package des

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestRunExecutesInTimeOrder(t *testing.T) {
	sim := New()
	var order []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		sim.AtFunc(at, func(s *Simulator) {
			order = append(order, at)
			if s.Now() != at {
				t.Errorf("clock %g, want %g", s.Now(), at)
			}
		})
	}
	end := sim.Run()
	if end != 5 {
		t.Fatalf("final clock %g, want 5", end)
	}
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != 5 {
		t.Fatalf("fired %d events, want 5", len(order))
	}
}

func TestFIFOTieBreak(t *testing.T) {
	sim := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		sim.AtFunc(7, func(*Simulator) { order = append(order, i) })
	}
	sim.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	sim := New()
	var at float64
	sim.AfterFunc(3, func(s *Simulator) {
		s.AfterFunc(4, func(s2 *Simulator) { at = s2.Now() })
	})
	sim.Run()
	if at != 7 {
		t.Fatalf("nested After landed at %g, want 7", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	sim := New()
	sim.AtFunc(5, func(s *Simulator) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic when scheduling in the past")
			}
		}()
		s.AtFunc(1, func(*Simulator) {})
	})
	sim.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	New().AfterFunc(-1, func(*Simulator) {})
}

func TestCancelPreventsFiring(t *testing.T) {
	sim := New()
	fired := false
	h := sim.AtFunc(2, func(*Simulator) { fired = true })
	if !sim.Cancel(h) {
		t.Fatal("Cancel returned false for a pending event")
	}
	if sim.Cancel(h) {
		t.Fatal("second Cancel should return false")
	}
	sim.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	sim := New()
	var h Handle
	h = sim.AtFunc(1, func(*Simulator) {})
	sim.Run()
	if sim.Cancel(h) {
		t.Fatal("Cancel after fire should return false")
	}
}

func TestStopHaltsRun(t *testing.T) {
	sim := New()
	count := 0
	for i := 1; i <= 10; i++ {
		sim.AtFunc(float64(i), func(s *Simulator) {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	sim.Run()
	if count != 3 {
		t.Fatalf("fired %d events after Stop, want 3", count)
	}
	if !sim.Stopped() {
		t.Fatal("Stopped() false after Stop")
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	sim := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 10, 20} {
		at := at
		sim.AtFunc(at, func(*Simulator) { fired = append(fired, at) })
	}
	n := sim.RunUntil(5)
	if n != 3 {
		t.Fatalf("RunUntil fired %d, want 3", n)
	}
	if sim.Now() != 5 {
		t.Fatalf("clock %g after RunUntil(5)", sim.Now())
	}
	if sim.Pending() != 2 {
		t.Fatalf("%d events pending, want 2", sim.Pending())
	}
	sim.Run()
	if len(fired) != 5 {
		t.Fatalf("total fired %d, want 5", len(fired))
	}
}

func TestRunUntilAdvancesClockWhenEmpty(t *testing.T) {
	sim := New()
	sim.RunUntil(42)
	if sim.Now() != 42 {
		t.Fatalf("clock %g, want 42", sim.Now())
	}
}

func TestRunUntilBackwardPanics(t *testing.T) {
	sim := New()
	sim.RunUntil(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for backward RunUntil")
		}
	}()
	sim.RunUntil(5)
}

func TestMaxEventsGuard(t *testing.T) {
	sim := New()
	sim.MaxEvents = 100
	var loop func(s *Simulator)
	loop = func(s *Simulator) { s.AfterFunc(0.001, loop) }
	sim.AfterFunc(0, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("expected MaxEvents panic")
		}
	}()
	sim.Run()
}

func TestPendingSkipsCancelled(t *testing.T) {
	sim := New()
	h1 := sim.AtFunc(1, func(*Simulator) {})
	sim.AtFunc(2, func(*Simulator) {})
	sim.Cancel(h1)
	if sim.Pending() != 1 {
		t.Fatalf("Pending %d, want 1", sim.Pending())
	}
}

func TestNextEventTime(t *testing.T) {
	sim := New()
	if _, ok := sim.NextEventTime(); ok {
		t.Fatal("NextEventTime should report empty queue")
	}
	h := sim.AtFunc(3, func(*Simulator) {})
	sim.AtFunc(5, func(*Simulator) {})
	if at, ok := sim.NextEventTime(); !ok || at != 3 {
		t.Fatalf("NextEventTime = %g,%v want 3,true", at, ok)
	}
	sim.Cancel(h)
	if at, ok := sim.NextEventTime(); !ok || at != 5 {
		t.Fatalf("after cancel NextEventTime = %g,%v want 5,true", at, ok)
	}
}

func TestFiredCounter(t *testing.T) {
	sim := New()
	for i := 0; i < 7; i++ {
		sim.AtFunc(float64(i), func(*Simulator) {})
	}
	sim.Run()
	if sim.Fired() != 7 {
		t.Fatalf("Fired %d, want 7", sim.Fired())
	}
}

func TestHandleValidity(t *testing.T) {
	var zero Handle
	if zero.Valid() {
		t.Fatal("zero Handle should be invalid")
	}
	if zero.Cancelled() {
		t.Fatal("zero Handle should not report cancelled")
	}
	sim := New()
	h := sim.AtFunc(1, func(*Simulator) {})
	if !h.Valid() {
		t.Fatal("real handle invalid")
	}
	sim.Cancel(h)
	if !h.Cancelled() {
		t.Fatal("cancelled handle not reporting cancelled")
	}
}

// Property: for any multiset of timestamps, Run fires all of them in
// non-decreasing order and ends with the clock at the maximum.
func TestQuickOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		sim := New()
		var fired []float64
		maxT := 0.0
		for _, r := range raw {
			at := float64(r) / 16
			if at > maxT {
				maxT = at
			}
			at2 := at
			sim.AtFunc(at, func(*Simulator) { fired = append(fired, at2) })
		}
		sim.Run()
		if len(fired) != len(raw) {
			return false
		}
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		return sim.Now() == maxT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset fires exactly the complement.
func TestQuickCancelSubset(t *testing.T) {
	f := func(times []uint8, mask []bool) bool {
		sim := New()
		fired := 0
		handles := make([]Handle, len(times))
		for i, tm := range times {
			handles[i] = sim.AtFunc(float64(tm), func(*Simulator) { fired++ })
		}
		cancelled := 0
		for i := range handles {
			if i < len(mask) && mask[i] {
				if sim.Cancel(handles[i]) {
					cancelled++
				}
			}
		}
		sim.Run()
		return fired == len(times)-cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := New()
		for j := 0; j < 1000; j++ {
			sim.AtFunc(float64(j%97), func(*Simulator) {})
		}
		sim.Run()
	}
}

func TestEveryFiresPeriodically(t *testing.T) {
	sim := New()
	var times []float64
	var stop func()
	stop = sim.Every(5, func(s *Simulator) {
		times = append(times, s.Now())
		if len(times) == 4 {
			stop()
		}
	})
	sim.AtFunc(100, func(*Simulator) {}) // keep the queue alive past the ticks
	sim.Run()
	want := []float64{5, 10, 15, 20}
	if len(times) != 4 {
		t.Fatalf("fired %d times: %v", len(times), times)
	}
	for i, at := range want {
		if times[i] != at {
			t.Fatalf("tick times %v, want %v", times, want)
		}
	}
}

func TestEveryStopsWithSimulator(t *testing.T) {
	sim := New()
	count := 0
	sim.Every(1, func(s *Simulator) {
		count++
		if count == 3 {
			s.Stop()
		}
	})
	sim.Run()
	if count != 3 {
		t.Fatalf("ticks after Stop: %d", count)
	}
}

func TestEveryInvalidInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Every(0, func(*Simulator) {})
}
