package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testBaseline = `{
  "benchmarks": {
    "BenchmarkFast": {"before": null, "after": {"ns_per_op": 1000}},
    "BenchmarkSlow": {"before": {"ns_per_op": 900}, "after": {"ns_per_op": 2000}},
    "BenchmarkNoAfter": {"before": {"ns_per_op": 5}}
  }
}`

// secondBaseline re-records BenchmarkFast slower; the loader must keep
// the most lenient committed figure per name.
const secondBaseline = `{"benchmarks": {"BenchmarkFast": {"after": {"ns_per_op": 1500}}}}`

const benchOutput = `goos: linux
goarch: amd64
BenchmarkFast-4     	1000	      1100 ns/op	  64 B/op	 2 allocs/op
BenchmarkSlow-4     	 500	      2600 ns/op
PASS
ok  	example	1.2s
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareWarnsOnRegression(t *testing.T) {
	base := writeTemp(t, "BENCH_a.json", testBaseline)
	in := writeTemp(t, "bench.out", benchOutput)
	t.Setenv("GITHUB_STEP_SUMMARY", "")
	var out, errOut strings.Builder
	code := run([]string{"-base", base, "-input", in}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (warnings are non-fatal): stderr=%q", code, errOut.String())
	}
	got := out.String()
	// +10% on Fast is under threshold; +30% on Slow is a regression.
	if !strings.Contains(got, "BenchmarkSlow") || !strings.Contains(got, "REGRESSION") {
		t.Fatalf("missing regression row:\n%s", got)
	}
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, "BenchmarkFast") && strings.Contains(line, "REGRESSION") {
			t.Fatalf("BenchmarkFast flagged despite being under threshold:\n%s", got)
		}
	}
	if !strings.Contains(got, "no current measurement for BenchmarkNoAfter") {
		// BenchmarkNoAfter has no "after" record, so it must not be
		// baselined at all — not reported as missing.
		if strings.Contains(got, "BenchmarkNoAfter") {
			t.Fatalf("null-after benchmark leaked into output:\n%s", got)
		}
	}
}

func TestStrictFailsOnRegression(t *testing.T) {
	base := writeTemp(t, "BENCH_a.json", testBaseline)
	in := writeTemp(t, "bench.out", benchOutput)
	var out, errOut strings.Builder
	if code := run([]string{"-base", base, "-input", in, "-strict"}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1 under -strict", code)
	}
	// A loose threshold clears the table even under -strict.
	if code := run([]string{"-base", base, "-input", in, "-strict", "-threshold", "0.5"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0 with 50%% threshold", code)
	}
}

func TestMostLenientBaselineWins(t *testing.T) {
	a := writeTemp(t, "BENCH_a.json", testBaseline)
	b := writeTemp(t, "BENCH_b.json", secondBaseline)
	in := writeTemp(t, "bench.out", "BenchmarkFast-4 10 1600 ns/op\n")
	var out, errOut strings.Builder
	if code := run([]string{"-base", a + "," + b, "-input", in}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut.String())
	}
	// 1600 vs the lenient 1500 baseline is +6.7%, not +60%.
	if strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("regression flagged against the stricter baseline:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "BENCH_b.json") {
		t.Fatalf("winning baseline provenance missing:\n%s", out.String())
	}
}

func TestStepSummaryMarkdown(t *testing.T) {
	base := writeTemp(t, "BENCH_a.json", testBaseline)
	in := writeTemp(t, "bench.out", benchOutput)
	summary := filepath.Join(t.TempDir(), "summary.md")
	t.Setenv("GITHUB_STEP_SUMMARY", summary)
	var out, errOut strings.Builder
	if code := run([]string{"-base", base, "-input", in}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut.String())
	}
	md, err := os.ReadFile(summary)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"### Benchmark comparison", "| BenchmarkSlow |", "regression", "| BenchmarkFast |", "| ok |"} {
		if !strings.Contains(string(md), want) {
			t.Fatalf("step summary missing %q:\n%s", want, md)
		}
	}
}

func TestParseBenchOutputRejectsEmpty(t *testing.T) {
	if _, err := parseBenchOutput(strings.NewReader("PASS\nok  x 0.1s\n")); err == nil {
		t.Fatal("want error for output with no benchmark lines")
	}
}

func TestMissingMeasurementReported(t *testing.T) {
	base := writeTemp(t, "BENCH_a.json", testBaseline)
	in := writeTemp(t, "bench.out", "BenchmarkFast-4 10 1000 ns/op\n")
	var out, errOut strings.Builder
	if code := run([]string{"-base", base, "-input", in}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "no current measurement for BenchmarkSlow") {
		t.Fatalf("missing-benchmark note absent:\n%s", out.String())
	}
}
