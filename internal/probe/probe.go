// Package probe records simulation-domain time series while a run is in
// flight. Where internal/obs watches the host process (goroutines, HTTP
// latency, job counters), probe watches the *simulated world*: per-site
// queue depth, instantaneous power draw, the RL agents' reward and error
// signals — each sampled on the DES clock at a fixed sim-time cadence.
//
// A Recorder is attached to one engine run via sched.Config.Probe. The
// engine registers closures for every series family the recorder wants
// and calls Start, which schedules a recurring DES event; each firing
// reads all registered closures at the same simulated instant. Sampling
// is read-only with respect to simulation outcomes: a probed run
// produces byte-identical results to an unprobed one (only the DES
// event count differs), and a nil Recorder costs nothing at all.
//
// Memory stays O(MaxPoints) per series regardless of run length: when a
// series fills, adjacent points are merged pairwise (mean value, later
// timestamp) and the sampling stride doubles, so resolution degrades
// gracefully instead of memory growing. Every such rewrite bumps the
// recorder's epoch, which live consumers (the daemon's SSE stream) use
// to detect that previously shipped points were rewritten.
package probe

import (
	"sync"

	"rlsched/internal/des"
)

// Series families a Recorder can sample. A Config selects a subset;
// engines ask Enabled before building the (potentially costly) closure.
const (
	// FamilyQueue samples per-site scheduler queue depth and agent
	// backlog, in task groups.
	FamilyQueue = "queue"
	// FamilyUtil samples the fraction of each site's processors that
	// are busy.
	FamilyUtil = "util"
	// FamilyPower samples platform-wide instantaneous power draw in
	// watts, including sleeping and waking nodes.
	FamilyPower = "power"
	// FamilyEnergy samples cumulative platform energy since t=0.
	FamilyEnergy = "energy"
	// FamilyRL samples the learning signals: mean reward, mean
	// turnaround-estimate error and shared-memory hit rate.
	FamilyRL = "rl"
	// FamilyGroup samples the mean task-group size placed so far.
	FamilyGroup = "group"
)

// Families lists every valid series family in canonical order.
var Families = []string{FamilyQueue, FamilyUtil, FamilyPower, FamilyEnergy, FamilyRL, FamilyGroup}

// ValidFamily reports whether name is a known series family.
func ValidFamily(name string) bool {
	for _, f := range Families {
		if f == name {
			return true
		}
	}
	return false
}

// Defaults used when a Config leaves Cadence or MaxPoints zero.
const (
	// DefaultCadence is the sampling interval in simulated time units.
	// At the paper's observation period (1000 units) this yields 40
	// raw samples per run before any downsampling.
	DefaultCadence = 25.0
	// DefaultMaxPoints bounds retained points per series.
	DefaultMaxPoints = 512
)

// minPoints is the floor MaxPoints is clamped to; below this the
// merge-adjacent reservoir would degrade to uselessness.
const minPoints = 8

// Config selects what a Recorder samples and how much it retains.
type Config struct {
	// Cadence is the sim-time interval between samples (0 = default).
	Cadence float64
	// MaxPoints bounds retained points per series (0 = default). It is
	// clamped to an even value of at least 8 so the merge-adjacent
	// downsampler halves cleanly.
	MaxPoints int
	// Series selects the families to record; empty selects all.
	Series []string
}

// withDefaults resolves zero fields and clamps MaxPoints.
func (c Config) withDefaults() Config {
	if c.Cadence <= 0 {
		c.Cadence = DefaultCadence
	}
	if c.MaxPoints <= 0 {
		c.MaxPoints = DefaultMaxPoints
	}
	if c.MaxPoints < minPoints {
		c.MaxPoints = minPoints
	}
	c.MaxPoints &^= 1
	return c
}

// recSeries is the internal state of one registered series: its
// identity, sampling closure and the bounded point reservoir.
type recSeries struct {
	name   string
	family string
	unit   string
	fn     func() float64

	points []Point
	// stride is how many raw samples fold into one retained point; it
	// starts at 1 and doubles every time the reservoir halves.
	stride int
	// accT/accV/accN accumulate the in-progress stride: last sample
	// time, value sum and sample count.
	accT float64
	accV float64
	accN int
}

// Recorder samples registered series on the DES clock. The zero value
// is not usable; call NewRecorder. All methods are safe for concurrent
// use — the engine samples from the event loop while the daemon
// snapshots from HTTP handlers.
type Recorder struct {
	cfg  Config
	want map[string]bool // nil = all families

	mu     sync.Mutex
	series []*recSeries
	epoch  uint64
	stop   func()
}

// NewRecorder builds a Recorder for the given config. Unknown families
// in cfg.Series are ignored (config validation rejects them upstream).
func NewRecorder(cfg Config) *Recorder {
	r := &Recorder{cfg: cfg.withDefaults()}
	if len(cfg.Series) > 0 {
		r.want = make(map[string]bool, len(cfg.Series))
		for _, f := range cfg.Series {
			r.want[f] = true
		}
	}
	return r
}

// Enabled reports whether the recorder wants series of this family.
// Engines use it to skip building closures nobody will read.
func (r *Recorder) Enabled(family string) bool {
	if r == nil {
		return false
	}
	return r.want == nil || r.want[family]
}

// Register adds a named series sampled by fn at each cadence tick. It
// is a no-op when the family is not enabled. Registration order is the
// canonical series order in snapshots and exports.
func (r *Recorder) Register(family, name, unit string, fn func() float64) {
	if !r.Enabled(family) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.series = append(r.series, &recSeries{name: name, family: family, unit: unit, fn: fn, stride: 1})
}

// Start takes an immediate sample and schedules the recurring sampling
// event on sim. The engine stops the simulator when the run completes,
// which retires the recurring event; Stop exists for callers that want
// to cease sampling earlier.
func (r *Recorder) Start(sim *des.Simulator) {
	r.SampleNow(sim.Now())
	stop := sim.Every(r.cfg.Cadence, func(s *des.Simulator) {
		r.SampleNow(s.Now())
	})
	r.mu.Lock()
	r.stop = stop
	r.mu.Unlock()
}

// Stop cancels the recurring sampling event, if any.
func (r *Recorder) Stop() {
	r.mu.Lock()
	stop := r.stop
	r.stop = nil
	r.mu.Unlock()
	if stop != nil {
		stop()
	}
}

// SampleNow reads every registered series at simulated time t. The
// engine calls it once at run end (in addition to the cadence ticks) so
// the final simulated instant is always represented.
func (r *Recorder) SampleNow(t float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.series {
		s.accT = t
		s.accV += s.fn()
		s.accN++
		if s.accN < s.stride {
			continue
		}
		s.points = append(s.points, Point{T: s.accT, V: s.accV / float64(s.accN)})
		s.accT, s.accV, s.accN = 0, 0, 0
		if len(s.points) >= r.cfg.MaxPoints {
			r.downsampleLocked(s)
		}
	}
}

// downsampleLocked merges adjacent point pairs: each surviving point
// takes the later timestamp and the mean value, the stride doubles so
// future samples accumulate at the new resolution, and the epoch bumps
// so streaming consumers know history was rewritten.
func (r *Recorder) downsampleLocked(s *recSeries) {
	half := len(s.points) / 2
	for i := 0; i < half; i++ {
		a, b := s.points[2*i], s.points[2*i+1]
		s.points[i] = Point{T: b.T, V: (a.V + b.V) / 2}
	}
	s.points = s.points[:half]
	s.stride *= 2
	r.epoch++
}

// Snapshot returns a deep copy of every recorded series plus the
// current downsample epoch (captured atomically with the points). An
// in-progress stride accumulation is included as a provisional trailing
// point so live consumers see the newest sample without waiting a full
// stride.
func (r *Recorder) Snapshot() ([]Series, uint64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Series, len(r.series))
	for i, s := range r.series {
		pts := make([]Point, len(s.points), len(s.points)+1)
		copy(pts, s.points)
		if s.accN > 0 {
			pts = append(pts, Point{T: s.accT, V: s.accV / float64(s.accN)})
		}
		out[i] = Series{Name: s.name, Family: s.family, Unit: s.unit, Points: pts}
	}
	return out, r.epoch
}
