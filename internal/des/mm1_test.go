package des

import (
	"math"
	"testing"

	"rlsched/internal/rng"
)

// TestMM1AgainstTheory verifies the event engine against closed-form
// queueing theory: an M/M/1 queue with arrival rate λ and service rate μ
// has mean time in system W = 1/(μ−λ). A correct event engine driving a
// correct queue model must reproduce it; this is the strongest end-to-end
// check available for the substrate everything else builds on.
func TestMM1AgainstTheory(t *testing.T) {
	const (
		lambda = 0.8
		mu     = 1.0
		n      = 200000
	)
	r := rng.NewStream(12345, "mm1")
	sim := New()

	type job struct{ arrival float64 }
	var (
		queue      []job
		busy       bool
		totalW     float64
		completed  int
		finishJob  func(s *Simulator)
		startIfCan func(s *Simulator)
	)
	startIfCan = func(s *Simulator) {
		if busy || len(queue) == 0 {
			return
		}
		busy = true
		s.AfterFunc(r.Exp(1/mu), finishJob)
	}
	finishJob = func(s *Simulator) {
		j := queue[0]
		queue = queue[1:]
		busy = false
		totalW += s.Now() - j.arrival
		completed++
		startIfCan(s)
	}
	var arrive func(s *Simulator)
	arrivals := 0
	arrive = func(s *Simulator) {
		arrivals++
		queue = append(queue, job{arrival: s.Now()})
		startIfCan(s)
		if arrivals < n {
			s.AfterFunc(r.Exp(1/lambda), arrive)
		}
	}
	sim.AfterFunc(r.Exp(1/lambda), arrive)
	sim.Run()

	if completed != n {
		t.Fatalf("completed %d/%d jobs", completed, n)
	}
	meanW := totalW / float64(completed)
	wantW := 1 / (mu - lambda) // = 5 time units at rho = 0.8
	if math.Abs(meanW-wantW)/wantW > 0.05 {
		t.Fatalf("M/M/1 mean time in system %.3f, theory %.3f (>5%% off)", meanW, wantW)
	}
}

// TestMM1LittleLaw cross-checks Little's law on the same model: the
// time-averaged number in system L must equal λ·W.
func TestMM1LittleLaw(t *testing.T) {
	const (
		lambda = 0.5
		mu     = 1.0
		n      = 100000
	)
	r := rng.NewStream(999, "little")
	sim := New()

	var (
		queue      int
		busy       bool
		inSystem   int
		areaL      float64
		lastChange float64
		totalW     float64
		arrivalsQ  []float64
		completed  int
	)
	account := func(now float64) {
		areaL += float64(inSystem) * (now - lastChange)
		lastChange = now
	}
	var finish func(s *Simulator)
	start := func(s *Simulator) {
		if busy || queue == 0 {
			return
		}
		busy = true
		queue--
		s.AfterFunc(r.Exp(1/mu), finish)
	}
	finish = func(s *Simulator) {
		account(s.Now())
		busy = false
		inSystem--
		totalW += s.Now() - arrivalsQ[completed]
		completed++
		start(s)
	}
	arrivals := 0
	var arrive func(s *Simulator)
	arrive = func(s *Simulator) {
		account(s.Now())
		arrivals++
		inSystem++
		arrivalsQ = append(arrivalsQ, s.Now())
		queue++
		start(s)
		if arrivals < n {
			s.AfterFunc(r.Exp(1/lambda), arrive)
		}
	}
	sim.AfterFunc(r.Exp(1/lambda), arrive)
	end := sim.Run()
	account(end)

	L := areaL / end
	W := totalW / float64(completed)
	effLambda := float64(n) / end
	if math.Abs(L-effLambda*W)/L > 0.05 {
		t.Fatalf("Little's law violated: L=%.3f, lambda*W=%.3f", L, effLambda*W)
	}
}
