// Package report renders experiment figures as aligned text tables, ASCII
// line charts and CSV, so every figure of the paper can be regenerated and
// inspected from a terminal without plotting dependencies.
package report

import (
	"fmt"
	"math"
	"strings"

	"rlsched/internal/experiments"
)

// Table renders a figure as an aligned table: one row per x value, one
// column per series.
func Table(fig experiments.Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(fig.ID), fig.Title)
	if fig.Expected != "" {
		fmt.Fprintf(&b, "expected shape: %s\n", fig.Expected)
	}
	if len(fig.Series) == 0 {
		b.WriteString("(no series)\n")
		return b.String()
	}

	// Collect the union of x values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range fig.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}

	headers := []string{fig.XLabel}
	for _, s := range fig.Series {
		headers = append(headers, s.Label)
	}
	rows := [][]string{headers}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range fig.Series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = trimFloat(s.Y[i])
					if i < len(s.CI95) && s.CI95[i] > 0 {
						cell += " ±" + trimFloat(s.CI95[i])
					}
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	b.WriteString(AlignRows(rows, "  "))
	return b.String()
}

// trimFloat formats with 4 significant digits, dropping trailing zeros.
func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// AlignRows pads each column of rows to its widest cell.
func AlignRows(rows [][]string, sep string) string {
	if len(rows) == 0 {
		return ""
	}
	cols := 0
	for _, r := range rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for _, r := range rows {
		for i, c := range r {
			b.WriteString(c)
			if i < len(r)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
				b.WriteString(sep)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders the figure as long-form CSV (series,x,y,ci95).
func CSV(fig experiments.Figure) string {
	var b strings.Builder
	b.WriteString("series,x,y,ci95\n")
	for _, s := range fig.Series {
		for i := range s.X {
			ci := 0.0
			if i < len(s.CI95) {
				ci = s.CI95[i]
			}
			fmt.Fprintf(&b, "%s,%g,%g,%g\n", csvEscape(s.Label), s.X[i], s.Y[i], ci)
		}
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Chart renders a crude ASCII line chart of the figure: one mark per
// series per x position, on a height×width grid.
func Chart(fig experiments.Figure, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	marks := "ox+*#@%&"
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range fig.Series {
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return "(empty chart)\n"
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range fig.Series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			col := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			row := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			r := height - 1 - row
			if grid[r][col] == ' ' {
				grid[r][col] = mark
			} else {
				grid[r][col] = '*' // collision
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (y: %s in [%s, %s]; x: %s in [%s, %s])\n",
		fig.Title, fig.YLabel, trimFloat(minY), trimFloat(maxY), fig.XLabel, trimFloat(minX), trimFloat(maxX))
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("|\n")
	}
	b.WriteString("legend:")
	for si, s := range fig.Series {
		fmt.Fprintf(&b, " %c=%s", marks[si%len(marks)], s.Label)
	}
	b.WriteString("\n")
	return b.String()
}

// Markdown renders the figure as a GitHub-flavoured markdown table, ready
// for pasting into EXPERIMENTS.md.
func Markdown(fig experiments.Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", strings.ToUpper(fig.ID), fig.Title)
	if fig.Expected != "" {
		fmt.Fprintf(&b, "Expected shape: %s\n\n", fig.Expected)
	}
	if len(fig.Series) == 0 {
		b.WriteString("(no series)\n")
		return b.String()
	}
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range fig.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	b.WriteString("| " + fig.XLabel)
	for _, s := range fig.Series {
		b.WriteString(" | " + s.Label)
	}
	b.WriteString(" |\n|")
	for i := 0; i <= len(fig.Series); i++ {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, x := range xs {
		b.WriteString("| " + trimFloat(x))
		for _, s := range fig.Series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = trimFloat(s.Y[i])
					if i < len(s.CI95) && s.CI95[i] > 0 {
						cell += " ±" + trimFloat(s.CI95[i])
					}
					break
				}
			}
			b.WriteString(" | " + cell)
		}
		b.WriteString(" |\n")
	}
	return b.String()
}

// AblationTable renders ablation results as an aligned table.
func AblationTable(results []experiments.AblationResult) string {
	rows := [][]string{{"arm", "AveRT (t units)", "ECS (millions)", "success rate"}}
	for _, r := range results {
		rows = append(rows, []string{
			r.Arm,
			fmt.Sprintf("%.1f ±%.1f", r.AveRT.Mean, r.AveRT.CI95),
			fmt.Sprintf("%.3f ±%.3f", r.ECS.Mean, r.ECS.CI95),
			fmt.Sprintf("%.3f ±%.3f", r.Success.Mean, r.Success.CI95),
		})
	}
	return "ABLATIONS (heavy load point)\n" + AlignRows(rows, "  ")
}
