package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"rlsched/internal/cache"
	"rlsched/internal/config"
	"rlsched/internal/experiments"
	"rlsched/internal/journal"
	"rlsched/internal/obs"
	"rlsched/internal/obs/span"
	"rlsched/internal/sched"
)

// Dispatcher defaults; see Options.
const (
	// DefaultPoll is how often a lease polls its worker job's status.
	DefaultPoll = 100 * time.Millisecond
	// DefaultLeaseTimeout bounds each individual lease HTTP call.
	DefaultLeaseTimeout = 15 * time.Second
	// DefaultRetryBase seeds the exponential backoff after a transient
	// lease failure; DefaultRetryCap bounds its growth.
	DefaultRetryBase = 100 * time.Millisecond
	DefaultRetryCap  = 5 * time.Second
	// DefaultHedgeAfter floors the hedge deadline: a point must straggle
	// at least this long (and past 3x the p95 lease latency) before it is
	// duplicated to a second worker.
	DefaultHedgeAfter = time.Second
	// hedgeSamples is how many recent lease durations feed the hedge
	// deadline's latency percentile.
	hedgeSamples = 128
)

// Options configures a Dispatcher.
type Options struct {
	// Cache is the content-addressed result store. Required.
	Cache *cache.Store
	// Pool supplies lease targets; nil runs every cache miss locally
	// (the standalone and worker shapes — still cached, never fanned
	// out).
	Pool *Pool
	// Journal, when non-nil, receives lease and cacheref records so the
	// coordinator's spool is the source of truth for resumed fan-outs.
	// Appends are best-effort, like the server's terminal records.
	Journal func(journal.Record)
	// Registry receives the dispatcher's counters; nil uses a private
	// registry (the counters still work, nobody scrapes them).
	Registry *obs.Registry
	// Logger receives lease lifecycle warnings. Nil discards them.
	Logger *slog.Logger
	// Client issues lease requests; nil uses a private client without a
	// global timeout (each individual call is bounded by LeaseTimeout;
	// the lease as a whole lasts as long as the point runs).
	Client *http.Client
	// Poll is the lease status-poll interval; 0 selects DefaultPoll.
	Poll time.Duration
	// LeaseTimeout bounds each individual lease HTTP call (one submit,
	// one status poll, one result fetch); 0 selects DefaultLeaseTimeout.
	// A stalled worker connection becomes a transient, re-leasable
	// failure instead of a hung campaign.
	LeaseTimeout time.Duration
	// RetryBase/RetryCap shape the capped exponential backoff (with
	// deterministic jitter, see backoffDelay) a worker sits out after a
	// transient lease failure; 0 selects the defaults.
	RetryBase time.Duration
	RetryCap  time.Duration
	// HedgeAfter floors the hedge deadline; 0 selects DefaultHedgeAfter,
	// negative disables hedging entirely. Hedging a deterministic,
	// content-addressed point is safe: whichever copy finishes first
	// wins, and both produce identical bytes.
	HedgeAfter time.Duration
}

// Dispatcher executes campaigns through the cache and, when a pool is
// attached, across the pool's workers. Plug it into a job with Runner.
type Dispatcher struct {
	cache *cache.Store
	pool  *Pool
	jn    func(journal.Record)
	log   *slog.Logger
	cl    *client

	retryBase, retryCap time.Duration
	hedgeFloor          time.Duration
	hedgeOff            bool

	reg *obs.Registry

	cached, remote, local *obs.Counter
	leaseRetries          *obs.Counter
	hedges, hedgeWins     *obs.Counter
	leasesActive          *obs.Gauge

	// Completed-lease latency ring feeding the hedge deadline.
	lmu    sync.Mutex
	lats   []time.Duration
	latPos int
}

// NewDispatcher wires a dispatcher; see Options.
func NewDispatcher(opts Options) *Dispatcher {
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	log := opts.Logger
	if log == nil {
		log = obs.NopLogger()
	}
	hc := opts.Client
	if hc == nil {
		hc = &http.Client{}
	}
	poll := opts.Poll
	if poll <= 0 {
		poll = DefaultPoll
	}
	leaseTimeout := opts.LeaseTimeout
	if leaseTimeout <= 0 {
		leaseTimeout = DefaultLeaseTimeout
	}
	retryBase := opts.RetryBase
	if retryBase <= 0 {
		retryBase = DefaultRetryBase
	}
	retryCap := opts.RetryCap
	if retryCap <= 0 {
		retryCap = DefaultRetryCap
	}
	hedgeFloor := opts.HedgeAfter
	if hedgeFloor == 0 {
		hedgeFloor = DefaultHedgeAfter
	}
	return &Dispatcher{
		cache:      opts.Cache,
		pool:       opts.Pool,
		jn:         opts.Journal,
		log:        log,
		reg:        reg,
		cl:         &client{hc: hc, poll: poll, timeout: leaseTimeout},
		retryBase:  retryBase,
		retryCap:   retryCap,
		hedgeFloor: hedgeFloor,
		hedgeOff:   opts.HedgeAfter < 0,
		cached: reg.Counter("cluster_points_cached_total",
			"Campaign points served from the content-addressed result cache."),
		remote: reg.Counter("cluster_points_remote_total",
			"Campaign points executed on cluster workers."),
		local: reg.Counter("cluster_points_local_total",
			"Campaign points executed locally by the dispatcher (no worker available)."),
		leaseRetries: reg.Counter("cluster_lease_retries_total",
			"Leases re-issued after a worker was lost mid-point."),
		hedges: reg.Counter("cluster_hedges_total",
			"Straggling leases duplicated to a second worker after the hedge deadline."),
		hedgeWins: reg.Counter("cluster_hedge_wins_total",
			"Hedged leases where the duplicate finished before the original."),
		leasesActive: reg.Gauge("cluster_leases_active",
			"Leases currently in flight on cluster workers."),
	}
}

// leaseObserve records one lease attempt's duration into the
// cluster_lease_duration_seconds histogram, labelled by worker and
// outcome ("ok", "late", "transient", "deterministic") — the /metrics
// view of the latency distribution whose p95 sets the hedge deadline.
func (d *Dispatcher) leaseObserve(worker, outcome string, seconds float64) {
	d.reg.Histogram("cluster_lease_duration_seconds",
		"Duration of individual point-lease attempts by worker and outcome.",
		obs.DefBuckets, obs.L("worker", worker), obs.L("outcome", outcome)).Observe(seconds)
}

// observeLease feeds one completed lease duration into the latency ring.
func (d *Dispatcher) observeLease(dur time.Duration) {
	d.lmu.Lock()
	defer d.lmu.Unlock()
	if len(d.lats) < hedgeSamples {
		d.lats = append(d.lats, dur)
		return
	}
	d.lats[d.latPos] = dur
	d.latPos = (d.latPos + 1) % hedgeSamples
}

// hedgeDelay is how long a lease may straggle before it is duplicated:
// 3x the p95 of recent lease completions, floored by HedgeAfter so a
// cold dispatcher (or one with uniformly fast leases) never hedges on
// noise.
func (d *Dispatcher) hedgeDelay() time.Duration {
	d.lmu.Lock()
	cp := append([]time.Duration(nil), d.lats...)
	d.lmu.Unlock()
	if len(cp) < 8 {
		return d.hedgeFloor
	}
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	p95 := cp[len(cp)*95/100]
	if dl := 3 * p95; dl > d.hedgeFloor {
		return dl
	}
	return d.hedgeFloor
}

// JobMeta identifies the job a Runner executes on behalf of. The ID
// stamps the job's lease and cacheref journal records; RequestID, when
// set, rides every lease call as X-Request-ID so worker-side logs
// correlate with the coordinator request that caused them; Trace, when
// non-nil, collects the campaign's distributed spans under Parent (the
// job's own root span). A nil Trace disables all span work — every hook
// below costs a nil check.
type JobMeta struct {
	ID        string
	RequestID string
	Trace     *span.Trace
	Parent    span.ID
}

// Runner returns a Profile.RunPoints executor bound to one job; see
// JobMeta for what the binding carries.
func (d *Dispatcher) Runner(meta JobMeta) func(context.Context, experiments.Profile, []experiments.RunSpec) ([]sched.Result, error) {
	return func(ctx context.Context, p experiments.Profile, specs []experiments.RunSpec) ([]sched.Result, error) {
		return d.run(ctx, meta, p, specs)
	}
}

// encodeResult marshals a point result for the cache and the wire. The
// Collector (per-task records for post-hoc analysis) is dropped: no
// figure or summary reads it, and it can dwarf the result scalars.
func encodeResult(r sched.Result) ([]byte, error) {
	r.Collector = nil
	return json.Marshal(r)
}

// finishPoint folds a point that was not run in-process — served from
// cache or computed remotely — into the campaign's side channels: the
// job-level engine stats aggregate and the progress hook. Locally run
// points do both themselves.
func finishPoint(p experiments.Profile, r sched.Result) {
	if p.Engine.Stats != nil {
		p.Engine.Stats.Add(r.Stats)
	}
	if p.Progress != nil {
		p.Progress()
	}
}

// run executes one campaign: cache pass, worker fan-out, local
// remainder. Results come back in spec order, bit-identical to a local
// run; on failure the lowest-index failing point's error is returned,
// mirroring the local runner. When meta carries a span trace, the whole
// pipeline is recorded under a campaign root span: one point span per
// spec, with cache.lookup / lease.attempt / hedge / breaker /
// local.fallback children — none of which exist (or allocate) on an
// untraced run.
func (d *Dispatcher) run(ctx context.Context, meta JobMeta, p experiments.Profile, specs []experiments.RunSpec) ([]sched.Result, error) {
	camp := meta.Trace.Start(meta.Parent, "campaign")
	camp.SetInt("points", int64(len(specs)))
	defer camp.End()
	var pointSpans []*span.Span
	if meta.Trace != nil {
		pointSpans = make([]*span.Span, len(specs))
	}

	fp := p.CacheFingerprint()
	results := make([]sched.Result, len(specs))
	keys := make([]string, len(specs))
	var missing []int
	for i, spec := range specs {
		sp := meta.Trace.Start(camp.ID(), "point")
		if pointSpans != nil {
			pointSpans[i] = sp
			sp.SetInt("index", int64(i))
			sp.SetStr("policy", string(spec.Policy))
			sp.SetInt("tasks", int64(spec.NumTasks))
		}
		key, err := cache.PointKey(fp, spec)
		if err != nil {
			return nil, fmt.Errorf("cluster: keying point %d: %w", i, err)
		}
		keys[i] = key
		cl := meta.Trace.Start(sp.ID(), "cache.lookup")
		raw, tier := d.cache.GetTier(key)
		cl.SetStr("tier", string(tier))
		if tier != cache.TierMiss {
			var r sched.Result
			if err := json.Unmarshal(raw, &r); err == nil {
				cl.End()
				results[i] = r
				d.cached.Inc()
				sp.SetStr("outcome", "cached")
				sp.End()
				finishPoint(p, r)
				continue
			}
			// An undecodable value under a good envelope: treat as a miss
			// and recompute; the Put below overwrites it.
			cl.SetBool("undecodable", true)
		}
		cl.End()
		missing = append(missing, i)
	}
	if len(missing) == 0 {
		return results, nil
	}

	if d.pool != nil {
		var err error
		missing, err = d.fanOut(ctx, meta, p, specs, keys, results, missing, pointSpans)
		if err != nil {
			return nil, err
		}
	}
	if len(missing) == 0 {
		return results, nil
	}

	// Local remainder: no workers (or none left alive). One batched run
	// preserves the profile's own point parallelism; the profile copy
	// drops RunPoints so the batch cannot recurse into the dispatcher.
	sort.Ints(missing)
	local := p
	local.RunPoints = nil
	batch := make([]experiments.RunSpec, len(missing))
	for k, i := range missing {
		batch[k] = specs[i]
	}
	if meta.Trace != nil {
		// Bracket each locally run point with a span under its point
		// span: local.fallback when a cluster fan-out left this point
		// behind, engine.run when the run was always going to be local
		// (worker daemons have no pool; standalone daemons keep an empty
		// one for runtime registration). Batch index k maps back through
		// missing.
		name := "engine.run"
		if d.pool != nil && d.pool.AliveCount() > 0 {
			name = "local.fallback"
		}
		remainder := append([]int(nil), missing...)
		local.PointSpan = func(k int, _ experiments.RunSpec) func(error) {
			ls := meta.Trace.Start(pointSpans[remainder[k]].ID(), name)
			return func(err error) {
				if err != nil {
					ls.SetStr("error", err.Error())
				}
				ls.End()
			}
		}
	}
	out, err := experiments.RunManyCtx(ctx, local, batch)
	if err != nil {
		return nil, err
	}
	for k, i := range missing {
		results[i] = out[k]
		d.local.Inc()
		d.putPoint(meta.ID, i, keys[i], out[k])
		if pointSpans != nil {
			pointSpans[i].SetStr("outcome", "local")
			pointSpans[i].End()
		}
	}
	return results, nil
}

// putPoint stores one computed result in the cache and journals the
// cacheref that lets a restarted coordinator skip the point.
func (d *Dispatcher) putPoint(jobID string, i int, key string, r sched.Result) {
	data, err := encodeResult(r)
	if err != nil {
		d.log.Warn("cluster: point result not cacheable", "job", jobID, "point", i, "error", err.Error())
		return
	}
	if err := d.cache.Put(key, data); err != nil {
		d.log.Warn("cluster: cache put failed", "job", jobID, "point", i, "error", err.Error())
	}
	if d.jn != nil {
		d.jn(journal.Record{Op: journal.OpCacheRef, ID: jobID, Point: i, Key: key, Result: data})
	}
}

// flight is one point currently leased out during a fan-out.
type flight struct {
	idx     int
	start   time.Time
	holders map[string]bool // worker URLs currently leasing this point
	hedged  bool            // a duplicate lease was issued
	done    bool            // a result was accepted; late copies are discarded
	cancels []context.CancelFunc
}

// fan-out worker modes returned by the shared scheduler.
const (
	modeExit  = iota // nothing left (or the campaign failed): leave
	modeWait         // queue empty but points in flight: poll for hedge work
	modeFresh        // a fresh point was popped from the queue
	modeHedge        // a straggling flight was duplicated to this worker
)

// fanOut leases the missing points to alive workers — one in-flight
// lease per worker — and returns the indices it could not place (every
// worker's breaker open with work left, or no workers alive at all).
// Transient lease failures requeue the point and cost the worker a
// backoff (capped exponential with deterministic jitter) and a breaker
// strike; a straggling lease past the hedge deadline is duplicated to
// an idle worker, first valid result wins. A deterministic point
// failure stops the fan-out and is returned for the lowest failing
// index, exactly like the local runner's forEachPoint.
func (d *Dispatcher) fanOut(ctx context.Context, meta JobMeta, p experiments.Profile, specs []experiments.RunSpec, keys []string, results []sched.Result, missing []int, pointSpans []*span.Span) ([]int, error) {
	workers := d.pool.Alive()
	if len(workers) == 0 {
		return missing, nil
	}
	// psp resolves a point's span (nil when the campaign is untraced).
	psp := func(i int) *span.Span {
		if pointSpans == nil {
			return nil
		}
		return pointSpans[i]
	}

	var (
		mu       sync.Mutex
		queue    = append([]int(nil), missing...)
		inflight = make(map[int]*flight)
		tries    = make([]int, len(specs))
		errIdx   = len(specs)
		firstEr  error
	)
	// next hands a worker its next unit: a fresh point if the queue has
	// one, else the oldest hedgeable straggler, else wait/exit.
	next := func(w string) (*flight, int) {
		mu.Lock()
		defer mu.Unlock()
		if firstEr != nil {
			return nil, modeExit
		}
		if len(queue) > 0 {
			i := queue[0]
			queue = queue[1:]
			fl := &flight{idx: i, start: time.Now(), holders: map[string]bool{w: true}}
			inflight[i] = fl
			return fl, modeFresh
		}
		if len(inflight) == 0 {
			return nil, modeExit
		}
		if !d.hedgeOff {
			delay := d.hedgeDelay()
			var best *flight
			for _, fl := range inflight {
				if fl.done || fl.hedged || fl.holders[w] || time.Since(fl.start) < delay {
					continue
				}
				if best == nil || fl.start.Before(best.start) ||
					(fl.start.Equal(best.start) && fl.idx < best.idx) {
					best = fl
				}
			}
			if best != nil {
				best.hedged = true
				best.holders[w] = true
				return best, modeHedge
			}
		}
		return nil, modeWait
	}
	record := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, firstEr = i, err
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			attempt := 0
			for ctx.Err() == nil {
				fl, mode := next(url)
				switch mode {
				case modeExit:
					return
				case modeWait:
					select {
					case <-ctx.Done():
						return
					case <-time.After(d.cl.poll):
					}
					continue
				case modeHedge:
					d.hedges.Inc()
					d.log.Info("cluster: hedging straggling point",
						"job", meta.ID, "point", fl.idx, "worker", url)
					// The hedge itself is a zero-width marker span; the
					// duplicate lease below records like any other attempt.
					h := meta.Trace.Start(psp(fl.idx).ID(), "hedge")
					h.SetStr("worker", url)
					h.End()
				}
				mu.Lock()
				tries[fl.idx]++
				try := tries[fl.idx]
				mu.Unlock()
				lsp := meta.Trace.Start(psp(fl.idx).ID(), "lease.attempt")
				lsp.SetStr("worker", url)
				lsp.SetInt("try", int64(try))
				if mode == modeHedge {
					lsp.SetBool("hedge", true)
				}
				leaseStart := time.Now()
				lctx, lcancel := context.WithCancel(ctx)
				mu.Lock()
				fl.cancels = append(fl.cancels, lcancel)
				mu.Unlock()
				res, lerr := d.leasePoint(lctx, url, meta, p, specs[fl.idx], fl.idx, keys[fl.idx], lsp)
				lcancel()
				leaseSecs := time.Since(leaseStart).Seconds()
				if lerr == nil {
					mu.Lock()
					if fl.done {
						// The other copy of a hedged pair delivered first;
						// results are byte-identical, so just drop this one.
						mu.Unlock()
						lsp.SetStr("outcome", "late")
						lsp.End()
						d.leaseObserve(url, "late", leaseSecs)
						continue
					}
					fl.done = true
					delete(inflight, fl.idx)
					cancels := append([]context.CancelFunc(nil), fl.cancels...)
					results[fl.idx] = res
					mu.Unlock()
					// First valid result wins: reclaim the loser's lease.
					for _, c := range cancels {
						c()
					}
					lsp.SetStr("outcome", "ok")
					lsp.End()
					d.leaseObserve(url, "ok", leaseSecs)
					if ps := psp(fl.idx); ps != nil {
						ps.SetStr("outcome", "remote")
						ps.End()
					}
					d.remote.Inc()
					if mode == modeHedge {
						d.hedgeWins.Inc()
					}
					d.observeLease(time.Since(leaseStart))
					d.pool.countLease(url)
					d.putPoint(meta.ID, fl.idx, keys[fl.idx], res)
					finishPoint(p, res)
					attempt = 0
					continue
				}
				mu.Lock()
				wasDone := fl.done
				if !wasDone {
					delete(fl.holders, url)
					if len(fl.holders) == 0 {
						delete(inflight, fl.idx)
						if lerr.transient {
							queue = append(queue, fl.idx)
						}
					}
				}
				mu.Unlock()
				outcome := "transient"
				switch {
				case wasDone:
					outcome = "late"
				case !lerr.transient:
					outcome = "deterministic"
				}
				if !wasDone {
					lsp.SetStr("error", lerr.Error())
				}
				lsp.SetStr("outcome", outcome)
				lsp.End()
				d.leaseObserve(url, outcome, leaseSecs)
				if wasDone {
					// The hedge winner cancelled this lease; the point is
					// delivered and this is not the worker's fault.
					continue
				}
				if !lerr.transient {
					// Deterministic failure: re-running this spec anywhere
					// reproduces it, so it fails the campaign at this index.
					if ps := psp(fl.idx); ps != nil {
						ps.SetStr("outcome", "error")
						ps.End()
					}
					record(fl.idx, fmt.Errorf("point %d (%s n=%d cv=%g seed=%d): worker %s: %s",
						fl.idx, specs[fl.idx].Policy, specs[fl.idx].NumTasks, specs[fl.idx].HeterogeneityCV,
						specs[fl.idx].Seed, url, lerr.Error()))
					return
				}
				// The worker faltered, not the point: the index is already
				// requeued for a surviving worker (or the local remainder);
				// this worker takes a breaker strike and sits out a backoff.
				d.leaseRetries.Inc()
				d.pool.ReportFailure(url)
				d.log.Warn("cluster: lease lost, re-issuing point",
					"job", meta.ID, "point", fl.idx, "worker", url, "error", lerr.Error())
				if !d.pool.usable(url) {
					// The strike opened the worker's breaker: a marker span
					// records which point's failure tripped it.
					b := meta.Trace.Start(psp(fl.idx).ID(), "breaker")
					b.SetStr("worker", url)
					b.End()
					d.log.Warn("cluster: worker retired from fan-out",
						"job", meta.ID, "worker", url)
					return
				}
				attempt++
				select {
				case <-ctx.Done():
					return
				case <-time.After(backoffDelay(d.retryBase, d.retryCap, url, attempt)):
				}
			}
		}(w)
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mu.Lock()
	left := append([]int(nil), queue...)
	mu.Unlock()
	return left, nil
}

// leasePoint runs one point on one worker: journal the lease, submit a
// single-point keep_results job, wait for it to settle, fetch the full
// result. On a span-traced campaign the submit carries a traceparent
// naming this attempt's span as the remote parent, and the worker's own
// spans are fetched and folded into the campaign trace afterwards — so
// the worker-side job.run / engine.run timeline stitches under the
// lease attempt that caused it.
func (d *Dispatcher) leasePoint(ctx context.Context, url string, meta JobMeta, p experiments.Profile, spec experiments.RunSpec, i int, key string, lsp *span.Span) (sched.Result, *leaseError) {
	if d.jn != nil {
		d.jn(journal.Record{Op: journal.OpLease, ID: meta.ID, Point: i, Worker: url, Key: key})
	}
	d.leasesActive.Add(1)
	defer d.leasesActive.Add(-1)

	lm := leaseMeta{reqID: meta.RequestID}
	if meta.Trace != nil {
		lm.traceparent = span.FormatTraceparent(meta.Trace.TraceID(), lsp.ID())
	}
	// The lease carries the campaign's own profile (runtime hooks are
	// json:"-" and never cross the wire); the worker re-derives the same
	// cache fingerprint from it, so coordinator and worker agree on keys.
	js := config.JobSpec{
		Description: fmt.Sprintf("lease %s point %d", meta.ID, i),
		Kind:        config.JobPoints,
		Points:      []experiments.RunSpec{spec},
		KeepResults: true,
		Spans:       meta.Trace != nil,
		Profile:     p,
	}
	id, lerr := d.cl.submit(ctx, url, js, lm)
	if lerr != nil {
		return sched.Result{}, lerr
	}
	st, lerr := d.cl.wait(ctx, url, id, lm)
	if lerr != nil {
		return sched.Result{}, lerr
	}
	switch st.State {
	case "done":
	case "failed", "timeout":
		return sched.Result{}, deterministicf("%s", st.Error)
	default: // cancelled: the worker is going away, not the point
		return sched.Result{}, transientf("cluster: worker %s cancelled leased job %s", url, id)
	}
	rs, lerr := d.cl.fullResults(ctx, url, id, lm)
	if lerr != nil {
		return sched.Result{}, lerr
	}
	if len(rs) != 1 {
		return sched.Result{}, transientf("cluster: worker %s returned %d results for a single-point lease", url, len(rs))
	}
	if meta.Trace != nil {
		// Best effort: the result is already in hand, so a failed span
		// fetch loses telemetry, never the point — but it is counted as
		// a drop so the trace cannot silently understate.
		recs, dropped, err := d.cl.spans(ctx, url, id, lm)
		if err != nil {
			meta.Trace.NoteDrops(1)
			d.log.Warn("cluster: worker span fetch failed",
				"job", meta.ID, "point", i, "worker", url, "error", err.Error())
		} else {
			meta.Trace.Import(recs, dropped)
		}
	}
	return rs[0], nil
}
