package sched

import (
	"errors"
	"math"
	"strings"
	"testing"

	"rlsched/internal/grouping"
	"rlsched/internal/platform"
	"rlsched/internal/rng"
	"rlsched/internal/trace"
	"rlsched/internal/workload"
)

// buildRun constructs a small platform + workload + engine with the given
// policy and task count.
func buildRun(t *testing.T, n int, policy Policy, seed uint64, mutate func(*Config)) Result {
	t.Helper()
	r := rng.NewStream(seed, "run")
	pcfg := platform.DefaultGenConfig()
	pcfg.Sites = 3
	pcfg.MinNodesPerSite, pcfg.MaxNodesPerSite = 2, 3
	pl := platform.MustGenerate(pcfg, r.Split("platform"))
	wcfg := workload.DefaultGenConfig()
	wcfg.NumTasks = n
	wcfg.MeanInterArrival = 1
	wcfg.SlowestSpeedMIPS = pl.SlowestSpeed()
	tasks := workload.MustGenerate(wcfg, r.Split("workload"))
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	eng := MustNew(cfg, pl, tasks, policy, r.Split("engine"))
	return eng.MustRun()
}

func TestRunCompletesAllTasks(t *testing.T) {
	res := buildRun(t, 300, NewGreedy(), 1, nil)
	if res.Completed != 300 || res.Submitted != 300 {
		t.Fatalf("completed %d/%d", res.Completed, res.Submitted)
	}
	if res.AveRT <= 0 {
		t.Fatalf("AveRT %g must be positive", res.AveRT)
	}
	if res.ECS <= 0 {
		t.Fatalf("ECS %g must be positive", res.ECS)
	}
	if res.SuccessRate < 0 || res.SuccessRate > 1 {
		t.Fatalf("success rate %g out of [0,1]", res.SuccessRate)
	}
	if res.MeanUtilization <= 0 || res.MeanUtilization > 1 {
		t.Fatalf("utilisation %g out of (0,1]", res.MeanUtilization)
	}
	if res.EndTime <= 0 {
		t.Fatal("end time must be positive")
	}
	if err := res.Collector.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := buildRun(t, 200, NewGreedy(), 7, nil)
	b := buildRun(t, 200, NewGreedy(), 7, nil)
	if a.AveRT != b.AveRT || a.ECS != b.ECS || a.SuccessRate != b.SuccessRate || a.EndTime != b.EndTime {
		t.Fatalf("identical seeds diverged: %+v vs %+v", a, b)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	a := buildRun(t, 200, NewGreedy(), 7, nil)
	b := buildRun(t, 200, NewGreedy(), 8, nil)
	if a.AveRT == b.AveRT && a.ECS == b.ECS {
		t.Fatal("different seeds produced identical results — RNG wiring broken")
	}
}

func TestResponseTimeDominatesExecTime(t *testing.T) {
	res := buildRun(t, 200, NewGreedy(), 3, nil)
	for _, tr := range res.Collector.Tasks() {
		if tr.WaitTime < 0 {
			t.Fatalf("task %d has negative wait %g", tr.ID, tr.WaitTime)
		}
		if tr.ResponseTime < tr.WaitTime {
			t.Fatalf("task %d RT %g < wait %g", tr.ID, tr.ResponseTime, tr.WaitTime)
		}
	}
	if res.MeanWait >= res.AveRT {
		t.Fatal("mean wait must be below mean response time")
	}
}

func TestEnergyAtLeastIdleFloor(t *testing.T) {
	res := buildRun(t, 100, NewGreedy(), 5, nil)
	// Energy must exceed what an entirely idle platform would consume
	// over the same span is false (throttle); but it must exceed zero and
	// the idle fraction must be below 1 since work was done.
	if res.Efficiency.IdleFraction >= 1 || res.Efficiency.IdleFraction < 0 {
		t.Fatalf("idle fraction %g out of [0,1)", res.Efficiency.IdleFraction)
	}
	if res.Efficiency.EnergyPerTask <= 0 {
		t.Fatal("energy per task must be positive")
	}
}

func TestSplitImprovesUtilization(t *testing.T) {
	with := buildRun(t, 400, NewGreedy(), 11, nil)
	without := buildRun(t, 400, NewGreedy(), 11, func(c *Config) { c.DisableSplit = true })
	// The split process exists to reduce idle time (§IV.D.2): disabling it
	// must not make the schedule finish earlier.
	if without.EndTime < with.EndTime*0.999 {
		t.Fatalf("disabling split shortened the run: %g vs %g", without.EndTime, with.EndTime)
	}
	if without.AveRT < with.AveRT*0.98 {
		t.Fatalf("disabling split improved AveRT noticeably: %g vs %g", without.AveRT, with.AveRT)
	}
}

func TestGroupRecordsConsistent(t *testing.T) {
	res := buildRun(t, 250, NewGreedy(), 13, nil)
	groups := res.Collector.Groups()
	if len(groups) == 0 {
		t.Fatal("no groups recorded")
	}
	total := 0
	for _, g := range groups {
		if g.Size <= 0 {
			t.Fatalf("group %d has size %d", g.GroupID, g.Size)
		}
		if g.Reward < 0 || g.Reward > g.Size {
			t.Fatalf("group %d reward %d outside [0,%d]", g.GroupID, g.Reward, g.Size)
		}
		if g.ErrTG < 0 {
			t.Fatalf("group %d negative err_tg", g.GroupID)
		}
		total += g.Size
	}
	if total != res.Completed {
		t.Fatalf("groups cover %d tasks, completed %d", total, res.Completed)
	}
}

func TestCycleSeriesMonotone(t *testing.T) {
	res := buildRun(t, 250, NewGreedy(), 17, nil)
	cycles := res.Collector.Cycles()
	if len(cycles) < 2 {
		t.Fatal("too few learning cycles recorded")
	}
	for i := 1; i < len(cycles); i++ {
		if cycles[i].At < cycles[i-1].At {
			t.Fatal("cycle times not monotone")
		}
		if cycles[i].CumBusyTime < cycles[i-1].CumBusyTime {
			t.Fatal("cumulative busy time decreased")
		}
	}
}

func TestUtilizationSeriesBounded(t *testing.T) {
	res := buildRun(t, 500, NewGreedy(), 19, nil)
	for _, u := range res.UtilWindows {
		if u < 0 || u > 1+1e-9 {
			t.Fatalf("windowed utilisation %g out of [0,1]", u)
		}
	}
	for _, u := range res.UtilCumulative {
		if u < 0 || u > 1+1e-9 {
			t.Fatalf("cumulative utilisation %g out of [0,1]", u)
		}
	}
}

func TestHigherLoadIncreasesUtilization(t *testing.T) {
	light := buildRun(t, 100, NewGreedy(), 23, nil)
	heavy := buildRun(t, 1500, NewGreedy(), 23, nil)
	if heavy.MeanUtilization <= light.MeanUtilization {
		t.Fatalf("utilisation should grow with load: light %g, heavy %g",
			light.MeanUtilization, heavy.MeanUtilization)
	}
	if heavy.ECS <= light.ECS {
		t.Fatalf("energy should grow with load: light %g, heavy %g", light.ECS, heavy.ECS)
	}
}

func TestOpnumAffectsGroupSize(t *testing.T) {
	small := buildRun(t, 300, &Greedy{Opnum: 1, Mode: grouping.ModeMixed}, 29, nil)
	big := buildRun(t, 300, &Greedy{Opnum: 6, Mode: grouping.ModeMixed}, 29, nil)
	if small.MeanGroupSize >= big.MeanGroupSize {
		t.Fatalf("opnum not respected: small %g, big %g", small.MeanGroupSize, big.MeanGroupSize)
	}
	if small.MeanGroupSize > 1.001 {
		t.Fatalf("opnum 1 should give singleton groups, got mean %g", small.MeanGroupSize)
	}
}

func TestIdenticalModeGroupsAreUniform(t *testing.T) {
	res := buildRun(t, 300, &Greedy{Opnum: 4, Mode: grouping.ModeIdentical}, 31, nil)
	if res.Completed != 300 {
		t.Fatalf("completed %d", res.Completed)
	}
}

func TestTaskStartRespectsArrival(t *testing.T) {
	res := buildRun(t, 200, NewGreedy(), 37, nil)
	for _, tr := range res.Collector.Tasks() {
		if tr.FinishedAt <= 0 {
			t.Fatalf("task %d finished at %g", tr.ID, tr.FinishedAt)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{GroupCloseTimeout: 0, TickInterval: 1},
		{GroupCloseTimeout: 1, TickInterval: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestNewRejectsBrokenInputs(t *testing.T) {
	r := rng.NewStream(1, "x")
	pl := platform.MustGenerate(platform.DefaultGenConfig(), r.Split("p"))
	wcfg := workload.DefaultGenConfig()
	wcfg.NumTasks = 10
	tasks := workload.MustGenerate(wcfg, r.Split("w"))

	if _, err := New(DefaultConfig(), pl, nil, NewGreedy(), r); err == nil {
		t.Error("expected error for empty workload")
	}
	// Out-of-order workload.
	shuffled := append([]*workload.Task(nil), tasks...)
	shuffled[0], shuffled[5] = shuffled[5], shuffled[0]
	if _, err := New(DefaultConfig(), pl, shuffled, NewGreedy(), r); err == nil {
		t.Error("expected error for out-of-order workload")
	}
	badCfg := DefaultConfig()
	badCfg.TickInterval = -1
	if _, err := New(badCfg, pl, tasks, NewGreedy(), r); err == nil {
		t.Error("expected error for bad config")
	}
}

// nilPlacer returns nil from PlaceGroup to exercise the engine fallback.
type nilPlacer struct{ Greedy }

func (n *nilPlacer) Name() string { return "nil-placer" }
func (n *nilPlacer) PlaceGroup(*Context, *Agent, *grouping.Group, []NodeInfo) *platform.Node {
	return nil
}

func TestEngineFallbackOnNilPlacement(t *testing.T) {
	p := &nilPlacer{Greedy{Opnum: 3, Mode: grouping.ModeMixed}}
	res := buildRun(t, 200, p, 41, nil)
	if res.Completed != 200 {
		t.Fatalf("completed %d with nil-returning placer", res.Completed)
	}
}

// sleeper puts every idle processor to sleep, exercising auto-wake.
type sleeper struct{ Greedy }

func (s *sleeper) Name() string { return "sleeper" }
func (s *sleeper) OnProcessorIdle(ctx *Context, p *platform.Processor) {
	ctx.Sleep(p)
}

func TestAggressiveSleeperStillCompletes(t *testing.T) {
	s := &sleeper{Greedy{Opnum: 3, Mode: grouping.ModeMixed}}
	res := buildRun(t, 200, s, 43, nil)
	if res.Completed != 200 {
		t.Fatalf("completed %d with aggressive sleeping", res.Completed)
	}
	awake := buildRun(t, 200, NewGreedy(), 43, nil)
	if res.AveRT <= awake.AveRT {
		t.Fatalf("sleep wake-latency should cost response time: sleeper %g, awake %g",
			res.AveRT, awake.AveRT)
	}
}

func TestSleeperSavesIdleEnergyUnderLightLoad(t *testing.T) {
	s := &sleeper{Greedy{Opnum: 2, Mode: grouping.ModeMixed}}
	slept := buildRun(t, 60, s, 47, nil)
	awake := buildRun(t, 60, NewGreedy(), 47, nil)
	// Under light load idle dominates; sleeping must cut total energy even
	// after the longer makespan.
	if slept.ECS >= awake.ECS {
		t.Fatalf("sleeping policy should save energy under light load: %g vs %g",
			slept.ECS, awake.ECS)
	}
}

func TestNodeInfoConsistency(t *testing.T) {
	r := rng.NewStream(3, "ni")
	pcfg := platform.DefaultGenConfig()
	pcfg.Sites = 1
	pcfg.MinNodesPerSite, pcfg.MaxNodesPerSite = 1, 1
	pl := platform.MustGenerate(pcfg, r.Split("p"))
	wcfg := workload.DefaultGenConfig()
	wcfg.NumTasks = 5
	tasks := workload.MustGenerate(wcfg, r.Split("w"))
	eng := MustNew(DefaultConfig(), pl, tasks, NewGreedy(), r.Split("e"))
	node := pl.Nodes()[0]
	ni := eng.nodeInfo(node)
	if ni.FreeSlots != node.QueueCap || ni.QueuedGroups != 0 || ni.QueuedWeight != 0 {
		t.Fatalf("fresh node info %+v", ni)
	}
	if ni.IdleProcs != node.NumProcessors() || ni.SleepProcs != 0 {
		t.Fatalf("fresh node proc states %+v", ni)
	}
	if math.Abs(ni.MeanPower()-node.Processors[0].PMinW) > 20 {
		t.Fatalf("mean idle power %g implausible", ni.MeanPower())
	}
}

func TestBestFitNode(t *testing.T) {
	mk := func(id int, speed float64, qcap int, queued float64) NodeInfo {
		n := &platform.Node{ID: id, QueueCap: qcap}
		n.Processors = []*platform.Processor{{SpeedMIPS: speed, Node: n, Throttle: 1}}
		return NodeInfo{Node: n, QueuedWeight: queued, FreeSlots: qcap}
	}
	g := &grouping.Group{Tasks: []*workload.Task{{SizeMI: 1000, Deadline: 5}}}
	// pw = 200. Capacities: 1000/2=500, 600/2=300, 400/2=200 (exact fit).
	cands := []NodeInfo{mk(0, 1000, 2, 0), mk(1, 600, 2, 0), mk(2, 400, 2, 0)}
	if got := BestFitNode(g, cands); got.ID != 2 {
		t.Fatalf("BestFitNode chose %d, want exact-fit node 2", got.ID)
	}
	if BestFitNode(g, nil) != nil {
		t.Fatal("empty candidates must give nil")
	}
}

func TestLeastLoadedNode(t *testing.T) {
	mk := func(id int, queued float64) NodeInfo {
		n := &platform.Node{ID: id, QueueCap: 2}
		n.Processors = []*platform.Processor{{SpeedMIPS: 500, Node: n, Throttle: 1}}
		return NodeInfo{Node: n, QueuedWeight: queued}
	}
	cands := []NodeInfo{mk(0, 5), mk(1, 2), mk(2, 9)}
	if got := LeastLoadedNode(cands); got.ID != 1 {
		t.Fatalf("LeastLoadedNode chose %d, want 1", got.ID)
	}
	if LeastLoadedNode(nil) != nil {
		t.Fatal("empty candidates must give nil")
	}
}

func TestHeavyLoadBacklogDrains(t *testing.T) {
	// Tiny platform + many tasks forces queue exhaustion and the backlog
	// path; the run must still complete every task.
	r := rng.NewStream(51, "bk")
	pcfg := platform.DefaultGenConfig()
	pcfg.Sites = 1
	pcfg.MinNodesPerSite, pcfg.MaxNodesPerSite = 1, 1
	pcfg.MinQueueCap, pcfg.MaxQueueCap = 1, 1
	pl := platform.MustGenerate(pcfg, r.Split("p"))
	wcfg := workload.DefaultGenConfig()
	wcfg.NumTasks = 150
	wcfg.MeanInterArrival = 0.5
	wcfg.SlowestSpeedMIPS = pl.SlowestSpeed()
	tasks := workload.MustGenerate(wcfg, r.Split("w"))
	eng := MustNew(DefaultConfig(), pl, tasks, NewGreedy(), r.Split("e"))
	res := eng.MustRun()
	if res.Completed != 150 {
		t.Fatalf("completed %d/150 under backlog pressure", res.Completed)
	}
	if res.MeanWait <= 0 {
		t.Fatal("backlog pressure must produce queueing delay")
	}
}

func BenchmarkEngineRun500(b *testing.B) {
	r := rng.NewStream(1, "bench")
	pcfg := platform.DefaultGenConfig()
	pcfg.Sites = 3
	pcfg.MinNodesPerSite, pcfg.MaxNodesPerSite = 2, 3
	pl0 := platform.MustGenerate(pcfg, r.Split("platform"))
	wcfg := workload.DefaultGenConfig()
	wcfg.NumTasks = 500
	wcfg.MeanInterArrival = 1
	wcfg.SlowestSpeedMIPS = pl0.SlowestSpeed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rr := rng.NewStream(uint64(i), "bench-run")
		pl := platform.MustGenerate(pcfg, rr.Split("platform"))
		tasks := workload.MustGenerate(wcfg, rr.Split("workload"))
		b.StartTimer()
		MustNew(DefaultConfig(), pl, tasks, NewGreedy(), rr.Split("engine")).MustRun()
	}
}

func TestEngineTracing(t *testing.T) {
	r := rng.NewStream(61, "tr")
	pcfg := platform.DefaultGenConfig()
	pcfg.Sites = 2
	pcfg.MinNodesPerSite, pcfg.MaxNodesPerSite = 2, 2
	pl := platform.MustGenerate(pcfg, r.Split("p"))
	wcfg := workload.DefaultGenConfig()
	wcfg.NumTasks = 120
	wcfg.MeanInterArrival = 1
	wcfg.SlowestSpeedMIPS = pl.SlowestSpeed()
	tasks := workload.MustGenerate(wcfg, r.Split("w"))
	counter := trace.NewCounter(trace.LevelDebug)
	ring := trace.NewRing(64, trace.LevelInfo)
	cfg := DefaultConfig()
	cfg.Tracer = trace.Multi{counter, ring}
	res := MustNew(cfg, pl, tasks, NewGreedy(), r.Split("e")).MustRun()
	if res.Completed != 120 {
		t.Fatalf("completed %d", res.Completed)
	}
	if got := counter.Count("arrival"); got != 120 {
		t.Fatalf("traced %d arrivals, want 120", got)
	}
	if got := counter.Count("dispatch"); got != 120 {
		t.Fatalf("traced %d dispatches, want 120", got)
	}
	if got := counter.Count("finish"); got != 120 {
		t.Fatalf("traced %d finishes, want 120", got)
	}
	if counter.Count("enqueue") == 0 || counter.Count("group-complete") == 0 {
		t.Fatal("group lifecycle events missing")
	}
	if counter.Count("enqueue") != counter.Count("group-complete") {
		t.Fatalf("enqueues %d != completions %d", counter.Count("enqueue"), counter.Count("group-complete"))
	}
	if ring.Len() == 0 {
		t.Fatal("ring captured nothing")
	}
}

func TestDVFSLazySavesEnergyWithCubicPower(t *testing.T) {
	run := func(dvfs bool) Result {
		r := rng.NewStream(91, "dvfs")
		pcfg := platform.DefaultGenConfig()
		pcfg.Sites = 2
		pcfg.MinNodesPerSite, pcfg.MaxNodesPerSite = 2, 2
		pcfg.PowerExponent = 3 // realistic DVFS power curve
		pl := platform.MustGenerate(pcfg, r.Split("p"))
		wcfg := workload.DefaultGenConfig()
		wcfg.NumTasks = 200
		wcfg.MeanInterArrival = 3 // light load: plenty of slack to clock down into
		wcfg.SlowestSpeedMIPS = pl.SlowestSpeed()
		tasks := workload.MustGenerate(wcfg, r.Split("w"))
		cfg := DefaultConfig()
		cfg.DVFSLazy = dvfs
		return MustNew(cfg, pl, tasks, NewGreedy(), r.Split("e")).MustRun()
	}
	base := run(false)
	lazy := run(true)
	if lazy.Completed != 200 || base.Completed != 200 {
		t.Fatalf("completions %d/%d", lazy.Completed, base.Completed)
	}
	if lazy.ECS >= base.ECS {
		t.Fatalf("lazy DVFS should save energy under cubic power: %g vs %g", lazy.ECS, base.ECS)
	}
	// Slowing into the deadline must not wreck success: the 10% margin
	// plus the MinThrottle floor keeps most deadlines.
	if lazy.SuccessRate < base.SuccessRate-0.15 {
		t.Fatalf("lazy DVFS broke deadlines: %g vs %g", lazy.SuccessRate, base.SuccessRate)
	}
}

func TestLazyThrottleBounds(t *testing.T) {
	e := &Engine{cfg: Config{DVFSLazy: true}}
	proc := &platform.Processor{SpeedMIPS: 1000, Throttle: 1}
	// Deadline already passed: full speed.
	overdue := &workload.Task{SizeMI: 1000, ArrivalTime: 0, Deadline: 5}
	if got := e.lazyThrottle(proc, overdue, 10); got != 1 {
		t.Fatalf("overdue throttle %g, want 1", got)
	}
	// Huge slack: scales down proportionally (clamping happens in
	// SetThrottle, not here).
	slack := &workload.Task{SizeMI: 900, ArrivalTime: 0, Deadline: 10}
	got := e.lazyThrottle(proc, slack, 0)
	want := 900.0 / (10 * 0.9) / 1000
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("throttle %g, want %g", got, want)
	}
	// Needs more than full speed: capped at 1.
	tight := &workload.Task{SizeMI: 5000, ArrivalTime: 0, Deadline: 2}
	if got := e.lazyThrottle(proc, tight, 0); got != 1 {
		t.Fatalf("tight throttle %g, want 1", got)
	}
}

func TestCubicPowerExponent(t *testing.T) {
	p := &platform.Processor{PMaxW: 100, PMinW: 50, Throttle: 0.5, PowerExponent: 3}
	p.SetState(platform.StateBusy, 0)
	p.Advance(1)
	want := 50 + 50*0.125 // pmin + (pmax-pmin)*0.5^3
	if math.Abs(p.Energy()-want) > 1e-9 {
		t.Fatalf("cubic busy energy %g, want %g", p.Energy(), want)
	}
}

func TestNaivePoliciesComplete(t *testing.T) {
	for _, p := range []Policy{NewRoundRobin(), NewRandom()} {
		res := buildRun(t, 250, p, 53, nil)
		if res.Completed != 250 {
			t.Fatalf("%s completed %d/250", p.Name(), res.Completed)
		}
		if err := res.Collector.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
	}
}

func TestGreedyBeatsRandomUnderLoad(t *testing.T) {
	random := buildRun(t, 1200, NewRandom(), 57, nil)
	greedy := buildRun(t, 1200, NewGreedy(), 57, nil)
	if greedy.AveRT >= random.AveRT {
		t.Fatalf("greedy %.1f not better than random %.1f under load", greedy.AveRT, random.AveRT)
	}
}

func TestRoundRobinRotates(t *testing.T) {
	res := buildRun(t, 300, NewRoundRobin(), 59, nil)
	// Rotation spreads groups across nodes: every node should have run
	// at least one task.
	// (Indirect check: all groups completed and utilisation positive.)
	if res.Completed != 300 || res.MeanUtilization <= 0 {
		t.Fatalf("round robin degenerate: %+v", res)
	}
}

func TestTimelineFromEngineRun(t *testing.T) {
	r := rng.NewStream(97, "gantt")
	pcfg := platform.DefaultGenConfig()
	pcfg.Sites = 2
	pcfg.MinNodesPerSite, pcfg.MaxNodesPerSite = 2, 2
	pl := platform.MustGenerate(pcfg, r.Split("p"))
	wcfg := workload.DefaultGenConfig()
	wcfg.NumTasks = 150
	wcfg.MeanInterArrival = 1
	wcfg.SlowestSpeedMIPS = pl.SlowestSpeed()
	tasks := workload.MustGenerate(wcfg, r.Split("w"))
	tl := trace.NewTimeline()
	cfg := DefaultConfig()
	cfg.Tracer = tl
	res := MustNew(cfg, pl, tasks, NewGreedy(), r.Split("e")).MustRun()
	if res.Completed != 150 {
		t.Fatalf("completed %d", res.Completed)
	}
	ivs := tl.Intervals()
	if len(ivs) != 150 {
		t.Fatalf("timeline has %d intervals, want 150", len(ivs))
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	// Total interval time equals total busy time.
	sum := 0.0
	for _, iv := range ivs {
		sum += iv.End - iv.Start
	}
	pl.AdvanceAll(res.EndTime)
	busy := 0.0
	for _, p := range pl.Processors() {
		busy += p.BusyTime()
	}
	if math.Abs(sum-busy) > 1e-6*busy {
		t.Fatalf("timeline covers %g busy-time, platform says %g", sum, busy)
	}
}

func TestCapacityWeightedRouting(t *testing.T) {
	// Build a platform with one fast site and one slow site, and verify
	// arrivals split roughly proportionally to aggregate speed.
	r := rng.NewStream(101, "route")
	pcfg := platform.DefaultGenConfig()
	pcfg.Sites = 2
	pcfg.MinNodesPerSite, pcfg.MaxNodesPerSite = 2, 2
	pcfg.MinProcsPerNode, pcfg.MaxProcsPerNode = 4, 4
	pl := platform.MustGenerate(pcfg, r.Split("p"))
	// Skew site 1 to ~3x the speed of site 0.
	speed0, speed1 := 0.0, 0.0
	for _, n := range pl.Sites[0].Nodes {
		for _, p := range n.Processors {
			p.SpeedMIPS = 500
			speed0 += p.SpeedMIPS
		}
	}
	for _, n := range pl.Sites[1].Nodes {
		for _, p := range n.Processors {
			p.SpeedMIPS = 1500
			speed1 += p.SpeedMIPS
		}
	}
	wcfg := workload.DefaultGenConfig()
	wcfg.NumTasks = 2000
	wcfg.MeanInterArrival = 2
	wcfg.SlowestSpeedMIPS = 500
	tasks := workload.MustGenerate(wcfg, r.Split("w"))
	counter := trace.NewCounter(trace.LevelDebug)
	cfg := DefaultConfig()
	cfg.Tracer = counter
	eng := MustNew(cfg, pl, tasks, NewGreedy(), r.Split("e"))
	res := eng.MustRun()
	if res.Completed != 2000 {
		t.Fatalf("completed %d", res.Completed)
	}
	// Count arrivals per agent from the trace ring... the counter only
	// keys by kind; instead recount by group completions per agent.
	perAgent := map[int]int{}
	for _, g := range res.Collector.Groups() {
		perAgent[g.AgentID] += g.Size
	}
	frac1 := float64(perAgent[1]) / 2000
	want := speed1 / (speed0 + speed1) // 0.75
	if math.Abs(frac1-want) > 0.05 {
		t.Fatalf("fast site received %.2f of tasks, want ~%.2f", frac1, want)
	}
}

// TestCorruptedQueueSurfacesInvariantError corrupts an engine's node
// queue before the run: a stray empty group can never complete, so the
// run-end flush must surface an *InvariantError from Run instead of
// crashing the process.
func TestCorruptedQueueSurfacesInvariantError(t *testing.T) {
	r := rng.NewStream(97, "inv")
	pcfg := platform.DefaultGenConfig()
	pcfg.Sites = 2
	pcfg.MinNodesPerSite, pcfg.MaxNodesPerSite = 2, 2
	pl := platform.MustGenerate(pcfg, r.Split("p"))
	wcfg := workload.DefaultGenConfig()
	wcfg.NumTasks = 80
	wcfg.MeanInterArrival = 1
	wcfg.SlowestSpeedMIPS = pl.SlowestSpeed()
	tasks := workload.MustGenerate(wcfg, r.Split("w"))
	eng := MustNew(DefaultConfig(), pl, tasks, NewGreedy(), r.Split("e"))
	// Corrupt: a group the engine never placed sits in a node queue. It
	// holds no tasks, so it is never dispatched and never completes.
	eng.queues[0] = append(eng.queues[0], &grouping.Group{ID: -1, NodeID: 0})
	res, err := eng.Run()
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("corrupted queue returned (%+v, %v), want *InvariantError", res.Completed, err)
	}
	if !strings.Contains(ie.Error(), "queue non-empty") {
		t.Fatalf("unexpected invariant message: %v", ie)
	}
	if ie.Policy == "" {
		t.Fatal("invariant error does not name the running policy")
	}
}

// TestMustRunPanicsOnInvariantError pins the MustRun contract for the
// callers that kept the old panic semantics.
func TestMustRunPanicsOnInvariantError(t *testing.T) {
	r := rng.NewStream(98, "inv-must")
	pcfg := platform.DefaultGenConfig()
	pcfg.Sites = 1
	pcfg.MinNodesPerSite, pcfg.MaxNodesPerSite = 1, 1
	pl := platform.MustGenerate(pcfg, r.Split("p"))
	wcfg := workload.DefaultGenConfig()
	wcfg.NumTasks = 20
	wcfg.MeanInterArrival = 1
	wcfg.SlowestSpeedMIPS = pl.SlowestSpeed()
	tasks := workload.MustGenerate(wcfg, r.Split("w"))
	eng := MustNew(DefaultConfig(), pl, tasks, NewGreedy(), r.Split("e"))
	eng.queues[0] = append(eng.queues[0], &grouping.Group{ID: -1, NodeID: 0})
	defer func() {
		if _, ok := recover().(*InvariantError); !ok {
			t.Fatal("MustRun did not panic with the invariant error")
		}
	}()
	eng.MustRun()
}
