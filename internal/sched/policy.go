// Package sched implements the dynamic scheduling framework the paper's
// evaluation runs every learning approach on ("the learning approaches are
// induced into the same system model and scheduling strategy", §V.B).
//
// The engine owns the mechanics that are common to all policies: Poisson
// arrivals routed to per-site agents, the merge buffers, bounded node
// queues of task groups, task dispatch in EDF order, the split process
// that feeds idle processors (§IV.D.2), sleep/wake transitions, energy
// sampling and metric collection. A Policy supplies only the decisions
// that differentiate the four approaches of Experiment 1: the grouping
// action (opnum + merge mode), group placement, power-state choices for
// idle processors, and whatever learning it performs on the feedback the
// engine delivers.
package sched

import (
	"fmt"

	"rlsched/internal/audit"
	"rlsched/internal/des"
	"rlsched/internal/grouping"
	"rlsched/internal/memory"
	"rlsched/internal/metrics"
	"rlsched/internal/platform"
	"rlsched/internal/rng"
	"rlsched/internal/workload"
)

// Action is the grouping decision taken per arriving task (§IV.D.1):
// the target group size and the merge mode.
type Action struct {
	Opnum int
	Mode  grouping.Mode
}

// NodeInfo is the engine's view of one node offered to a policy at
// placement time — the observed state S_c(t) = (Load, q−, PP_1..m) of
// §IV.B plus derived conveniences.
//
// A NodeInfo is a snapshot valid only for the duration of the policy call
// it was passed to (or the Context call that produced it): the engine
// reuses the backing storage — in particular ProcPower — on the next view
// of the same node. Policies that need state beyond the call must copy the
// values they care about (see MemoryState, which copies by construction).
type NodeInfo struct {
	Node *platform.Node
	// QueuedGroups is the number of groups currently occupying slots.
	QueuedGroups int
	// FreeSlots is q−, the available queue spaces.
	FreeSlots int
	// QueuedWeight is Load: the summed processing weight (Eq. 10) of the
	// queued groups, including the partially executed head.
	QueuedWeight float64
	// QueuedWork is the computational backlog in MI: the sizes of all
	// queued tasks that have not started executing yet.
	QueuedWork float64
	// InflightWork is the remaining computational volume (MI) of the
	// tasks currently executing on the node's processors.
	InflightWork float64
	// ProcPower lists the instantaneous power draw PP_j of each processor.
	ProcPower []float64
	// IdleProcs and SleepProcs count processors in the respective states.
	IdleProcs, SleepProcs int
}

// MeanPower averages ProcPower (0 for an empty slice).
func (ni NodeInfo) MeanPower() float64 {
	if len(ni.ProcPower) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range ni.ProcPower {
		sum += p
	}
	return sum / float64(len(ni.ProcPower))
}

// MemoryState converts the node view into the shared-memory state vector.
func (ni NodeInfo) MemoryState(siteLoad float64) memory.State {
	return memory.State{
		Load:      ni.QueuedWeight,
		FreeSlots: float64(ni.FreeSlots),
		MeanPower: ni.MeanPower(),
		SiteLoad:  siteLoad,
	}
}

// Agent is a per-site scheduler instance (§III.B: "In each resource site,
// an agent resides"). The engine owns its mechanics; policies attach their
// learning state by agent ID.
type Agent struct {
	// ID equals the site ID.
	ID int
	// Site is the resource site this agent manages.
	Site *platform.Site
	// Merger holds the open merge buffers.
	Merger *grouping.Merger

	backlog []*grouping.Group
	// Cycles counts completed learning cycles (group completions).
	Cycles int
	// LastReward is the reward of the most recent completed group, used
	// for the paper's reward-regression rule (§IV.C).
	LastReward float64
}

// BacklogLen returns the number of groups awaiting a free queue slot.
func (a *Agent) BacklogLen() int { return len(a.backlog) }

// Policy is the decision surface distinguishing the learning approaches.
// All methods run inside the single-threaded simulation loop.
type Policy interface {
	// Name identifies the policy in results.
	Name() string
	// Init is called once before the first arrival.
	Init(ctx *Context)
	// ChooseAction picks the grouping action for a task arriving at the
	// agent. The engine clamps Opnum to [1, MaxOpnum].
	ChooseAction(ctx *Context, ag *Agent, t *workload.Task) Action
	// PlaceGroup selects a node for a closed group from candidates (all
	// nodes of the agent's site that have a free queue slot; never empty).
	// Returning nil, or a node not among the candidates, makes the engine
	// fall back to the least-loaded candidate. The candidates slice and
	// the NodeInfos in it are engine-owned scratch, valid only until the
	// call returns.
	PlaceGroup(ctx *Context, ag *Agent, g *grouping.Group, candidates []NodeInfo) *platform.Node
	// OnAssigned is feedback immediately after placement: the error value
	// err_tg (Eq. 9) is already recorded on the group. The paper notes the
	// agent receives the error right after assignment (§IV.C).
	OnAssigned(ctx *Context, ag *Agent, g *grouping.Group, node *platform.Node)
	// OnGroupComplete delivers the reward feedback (Eq. 8) once every
	// member task finished (§IV.C).
	OnGroupComplete(ctx *Context, ag *Agent, g *grouping.Group)
	// OnProcessorIdle is called when a processor transitions to idle with
	// no dispatchable work at its node; the policy may put it to sleep via
	// ctx.Sleep (the go_sleep action of the Q+ baseline).
	OnProcessorIdle(ctx *Context, proc *platform.Processor)
	// OnTick runs every Config.TickInterval time units — the decision
	// interval used by policies that regulate power states or throttles.
	OnTick(ctx *Context)
}

// Context is the engine façade policies act through.
type Context struct {
	engine *Engine
	// Rand is the policy's private exploration stream.
	Rand *rng.Stream
	// Memory is the shared learning memory (§III.B). All policies may use
	// it; only Adaptive-RL does.
	Memory *memory.Shared
	// Audit is the decision recorder when the run is audited, nil
	// otherwise. Policies never record through it directly — they check it
	// for nil to skip annotation work, and hand the engine a Note via
	// SetAuditNote; the engine records the decision after validation.
	Audit *audit.Recorder

	auditNote  audit.Note
	auditNoted bool
}

// SetAuditNote annotates the decision the policy is about to return from
// ChooseAction. The engine consumes the note when it records the decision;
// a choice without a note is recorded as a plain "policy" decision.
// Calling it with Audit == nil is harmless but pointless — guard on
// ctx.Audit before doing any work to build the note.
func (c *Context) SetAuditNote(n audit.Note) {
	c.auditNote = n
	c.auditNoted = true
}

// takeAuditNote returns and clears the pending note, so a policy that
// annotates one decision cannot leak its note onto the next.
func (c *Context) takeAuditNote() audit.Note {
	if !c.auditNoted {
		return audit.Note{}
	}
	n := c.auditNote
	c.auditNote = audit.Note{}
	c.auditNoted = false
	return n
}

// Now returns the current simulation time.
func (c *Context) Now() float64 { return c.engine.sim.Now() }

// Sim exposes the simulator for policies that schedule their own events.
func (c *Context) Sim() *des.Simulator { return c.engine.sim }

// Platform returns the target system.
func (c *Context) Platform() *platform.Platform { return c.engine.pl }

// MaxOpnum returns the cap on group sizes: the maximum processor count of
// any node (§IV.D.1).
func (c *Context) MaxOpnum() int { return c.engine.maxOpnum }

// NodeInfo builds the engine's current view of a node.
func (c *Context) NodeInfo(n *platform.Node) NodeInfo { return c.engine.nodeInfo(n) }

// SiteNodeInfos returns views of every node in a site.
func (c *Context) SiteNodeInfos(s *platform.Site) []NodeInfo {
	out := make([]NodeInfo, len(s.Nodes))
	for i, n := range s.Nodes {
		out[i] = c.engine.nodeInfo(n)
	}
	return out
}

// SiteLoad returns the total queued processing weight across a site.
func (c *Context) SiteLoad(s *platform.Site) float64 {
	sum := 0.0
	for _, n := range s.Nodes {
		sum += c.engine.queuedWeight(n)
	}
	return sum
}

// Sleep transitions an idle processor into the deep-sleep state. It is a
// no-op unless the processor is currently idle.
func (c *Context) Sleep(p *platform.Processor) {
	c.engine.sleepProcessor(p)
}

// Metrics exposes the run's collector (read-only use by policies that
// learn from aggregate performance, e.g. the Online-RL reward signal).
func (c *Context) Metrics() *metrics.Collector { return c.engine.col }

// EnergySoFar returns cumulative ECS as of the latest energy sample.
func (c *Context) EnergySoFar() float64 { return c.engine.acct.TotalEnergy() }

// Agents returns the engine's agents (stable order by site ID).
func (c *Context) Agents() []*Agent { return c.engine.agents }

// validateAction clamps a policy's action to legal bounds.
func (c *Context) validateAction(a Action) Action {
	if a.Opnum < 1 {
		a.Opnum = 1
	}
	if a.Opnum > c.engine.maxOpnum {
		a.Opnum = c.engine.maxOpnum
	}
	if a.Mode != grouping.ModeMixed && a.Mode != grouping.ModeIdentical {
		panic(fmt.Sprintf("sched: policy returned invalid merge mode %d", int(a.Mode)))
	}
	return a
}
