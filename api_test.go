package rlsched_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rlsched"
)

// smallProfile shrinks the default profile so API tests stay fast.
func smallProfile() rlsched.Profile {
	p := rlsched.DefaultProfile()
	p.Replications = 1
	p.ObservationPeriod = 600
	return p
}

func TestRunThroughPublicAPI(t *testing.T) {
	res, err := rlsched.Run(smallProfile(), rlsched.RunSpec{
		Policy: rlsched.AdaptiveRL, NumTasks: 300, Seed: 1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Completed != 300 {
		t.Fatalf("completed %d/300", res.Completed)
	}
	if res.Policy != string(rlsched.AdaptiveRL) {
		t.Fatalf("policy %q", res.Policy)
	}
	if res.AveRT <= 0 || res.ECS <= 0 {
		t.Fatalf("degenerate metrics: %+v", res)
	}
}

func TestRunDeterministicThroughAPI(t *testing.T) {
	spec := rlsched.RunSpec{Policy: rlsched.QPlus, NumTasks: 200, Seed: 5}
	a, err := rlsched.Run(smallProfile(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rlsched.Run(smallProfile(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.AveRT != b.AveRT || a.ECS != b.ECS {
		t.Fatal("API runs not deterministic")
	}
}

func TestAllPoliciesConstructible(t *testing.T) {
	names := rlsched.AllPolicies()
	if len(names) != 4 {
		t.Fatalf("expected 4 comparison policies, got %d", len(names))
	}
	for _, name := range append(names, rlsched.Greedy) {
		p, err := rlsched.NewPolicy(name)
		if err != nil {
			t.Fatalf("NewPolicy(%s): %v", name, err)
		}
		if p.Name() == "" {
			t.Fatalf("policy %s has empty name", name)
		}
	}
	if _, err := rlsched.NewPolicy("nope"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestManualEngineAssembly(t *testing.T) {
	r := rlsched.NewStream(42, "manual")
	pcfg := rlsched.DefaultPlatformConfig()
	pcfg.Sites = 2
	pl, err := rlsched.GeneratePlatform(pcfg, r.Split("platform"))
	if err != nil {
		t.Fatal(err)
	}
	wcfg := rlsched.DefaultWorkloadConfig()
	wcfg.NumTasks = 150
	wcfg.SlowestSpeedMIPS = pl.SlowestSpeed()
	tasks, err := rlsched.GenerateWorkload(wcfg, r.Split("workload"))
	if err != nil {
		t.Fatal(err)
	}
	policy, err := rlsched.NewPolicy(rlsched.Greedy)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := rlsched.NewEngine(rlsched.DefaultEngineConfig(), pl, tasks, policy, r.Split("engine"))
	if err != nil {
		t.Fatal(err)
	}
	res := eng.MustRun()
	if res.Completed != 150 {
		t.Fatalf("completed %d/150", res.Completed)
	}
}

func TestFigureByIDAndRendering(t *testing.T) {
	p := smallProfile()
	fig, err := rlsched.FigureByID(p, "12")
	if err != nil {
		t.Fatalf("FigureByID: %v", err)
	}
	if fig.ID != "figure12" || len(fig.Series) != 2 {
		t.Fatalf("unexpected figure: %s with %d series", fig.ID, len(fig.Series))
	}
	table := rlsched.RenderTable(fig)
	if !strings.Contains(table, "FIGURE12") || !strings.Contains(table, "heavily-loaded") {
		t.Fatalf("table rendering broken:\n%s", table)
	}
	chart := rlsched.RenderChart(fig, 40, 10)
	if !strings.Contains(chart, "legend:") {
		t.Fatalf("chart rendering broken:\n%s", chart)
	}
	csv := rlsched.RenderCSV(fig)
	if !strings.HasPrefix(csv, "series,x,y,ci95\n") {
		t.Fatalf("csv rendering broken:\n%s", csv)
	}
	if _, err := rlsched.FigureByID(p, "99"); err == nil {
		t.Fatal("expected error for unknown figure")
	}
}

func TestAllFigureIDsOrder(t *testing.T) {
	ids := rlsched.AllFigureIDs()
	want := []string{"figure7", "figure8", "figure9", "figure10", "figure11", "figure12"}
	if len(ids) != len(want) {
		t.Fatalf("ids %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids %v, want %v", ids, want)
		}
	}
}

func TestConfigRoundTripThroughAPI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.json")
	f := rlsched.DefaultConfigFile()
	f.Profile.Seed = 1234
	if err := rlsched.SaveConfig(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := rlsched.LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Profile.Seed != 1234 {
		t.Fatalf("seed %d", got.Profile.Seed)
	}
}

func TestHeterogeneityOverrideThroughAPI(t *testing.T) {
	p := smallProfile()
	res, err := rlsched.Run(p, rlsched.RunSpec{
		Policy: rlsched.AdaptiveRL, NumTasks: 200, HeterogeneityCV: 0.9, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Heterogeneity <= 0 {
		t.Fatal("heterogeneity override had no effect")
	}
}

func TestCheckpointThroughAPI(t *testing.T) {
	cfg := rlsched.DefaultAdaptiveRLConfig()
	cfg.PreserveLearning = true
	policy, err := rlsched.NewAdaptiveRLPolicy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := smallProfile()
	if _, err := rlsched.RunWith(p, rlsched.RunSpec{Policy: rlsched.AdaptiveRL, NumTasks: 200, Seed: 1}, policy); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rlsched.SaveAdaptiveRLCheckpoint(&sb, policy); err != nil {
		t.Fatal(err)
	}
	restored, err := rlsched.LoadAdaptiveRLCheckpoint(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := rlsched.RunWith(p, rlsched.RunSpec{Policy: rlsched.AdaptiveRL, NumTasks: 200, Seed: 2}, restored)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 200 {
		t.Fatal("restored policy run incomplete")
	}
	// Non-adaptive policies are rejected.
	greedy, _ := rlsched.NewPolicy(rlsched.Greedy)
	if err := rlsched.SaveAdaptiveRLCheckpoint(&sb, greedy); err == nil {
		t.Fatal("expected error for non-adaptive policy")
	}
}

// TestJobSpansThroughAPI drives the tracing surface through the public
// aliases alone: an embedded JobServer runs a span-traced job and the
// /spans payload decodes into JobSpansResponse with well-formed
// SpanRecord entries.
func TestJobSpansThroughAPI(t *testing.T) {
	srv, err := rlsched.NewJobServer(rlsched.JobServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := `{"kind": "points", "spans": true,
		"points": [{"Policy": "greedy", "NumTasks": 20, "Seed": 1}],
		"profile": {"Replications": 1, "ObservationPeriod": 300, "LightTasks": 20, "HeavyTasks": 30, "Workers": 1}}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st rlsched.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(20 * time.Second)
	for st.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished (state %s)", st.ID, st.State)
		}
		time.Sleep(10 * time.Millisecond)
		r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}

	r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("spans: HTTP %d", r.StatusCode)
	}
	var sr rlsched.JobSpansResponse
	if err := json.NewDecoder(r.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.ID != st.ID || len(sr.TraceID) != 32 || sr.Dropped != 0 || len(sr.Spans) == 0 {
		t.Fatalf("spans payload: id=%q trace=%q dropped=%d spans=%d",
			sr.ID, sr.TraceID, sr.Dropped, len(sr.Spans))
	}
	var root rlsched.SpanRecord
	for _, rec := range sr.Spans {
		if rec.ParentID == "" {
			root = rec
		}
	}
	if root.Name != "job.run" || root.EndUnixNs < root.StartUnixNs {
		t.Fatalf("root span: %+v", root)
	}
}

// TestSpecHashGolden freezes the cache key format: the engine version,
// the envelope field names, the canonical JSON shape (sorted keys,
// literal numbers — a max uint64 seed must survive untouched) and the
// SHA-256 hex rendering. If this test fails, results stored under old
// keys are unreachable: either restore the format or deliberately bump
// CacheEngineVersion as the cache-flush mechanism.
func TestSpecHashGolden(t *testing.T) {
	if v := rlsched.CacheEngineVersion; v != "rlsched-v1" {
		t.Fatalf("CacheEngineVersion = %q: bumping it retires every cached result; update this test only on a deliberate bump", v)
	}
	golden := []struct {
		spec rlsched.RunSpec
		want string
	}{
		{
			rlsched.RunSpec{Policy: rlsched.Greedy, NumTasks: 100, Seed: 42},
			"sha256:d750066d09f42c72288271a524e97be59314f39564456c7c168ef64e13bc6593",
		},
		{
			rlsched.RunSpec{Policy: rlsched.AdaptiveRL, NumTasks: 1500, HeterogeneityCV: 1.1, Seed: 18446744073709551615},
			"sha256:48f66e1d5819544d3dd765f75f5725ab2e28dc4fd4cb5238e8692a47b648aae3",
		},
	}
	for _, g := range golden {
		if got := rlsched.SpecHash(g.spec); got != g.want {
			t.Errorf("SpecHash(%+v) = %s, want %s (frozen format)", g.spec, got, g.want)
		}
	}
}

// TestPointCacheKeyInsensitiveToCampaignShape checks the profile
// fingerprint: knobs that cannot change a point's result (replications,
// parallelism, progress plumbing) must not move the cache key, while
// result-relevant knobs must.
func TestPointCacheKeyInsensitiveToCampaignShape(t *testing.T) {
	spec := rlsched.RunSpec{Policy: rlsched.Greedy, NumTasks: 100, Seed: 42}
	base, err := rlsched.PointCacheKey(smallProfile(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(base, "sha256:") || len(base) != len("sha256:")+64 {
		t.Fatalf("malformed key %q", base)
	}

	reshaped := smallProfile()
	reshaped.Workers = 7
	reshaped.Replications = 9
	reshaped.Seed = 999
	reshaped.Progress = func() {}
	same, err := rlsched.PointCacheKey(reshaped, spec)
	if err != nil {
		t.Fatal(err)
	}
	if same != base {
		t.Fatal("campaign-shape knobs moved the cache key; repeated points would never hit")
	}

	heavier := smallProfile()
	heavier.ObservationPeriod *= 2
	moved, err := rlsched.PointCacheKey(heavier, spec)
	if err != nil {
		t.Fatal(err)
	}
	if moved == base {
		t.Fatal("a result-relevant profile change kept the cache key; the cache would serve wrong results")
	}
}
