// Resilience: inject processor failures (the §I motivation — overheating
// causes freezes and frequent failures) and compare Adaptive-RL's
// behaviour against a healthy run of the same scenario. Also demonstrates
// workload-trace export/replay: the exact task stream is serialised to
// CSV and re-read to drive the second run, proving both runs saw
// identical work.
package main

import (
	"fmt"
	"log"
	"strings"

	"rlsched"
)

func main() {
	profile := rlsched.DefaultProfile()
	spec := rlsched.RunSpec{Policy: rlsched.AdaptiveRL, NumTasks: 2000, Seed: 11}

	// Build the scenario once and export its workload trace.
	platform, tasks, err := rlsched.BuildScenario(profile, spec)
	if err != nil {
		log.Fatal(err)
	}
	var traceCSV strings.Builder
	if err := rlsched.WriteWorkloadTrace(&traceCSV, tasks); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported workload trace: %d tasks, %d bytes of CSV\n",
		len(tasks), traceCSV.Len())

	// Healthy run on the built scenario.
	policy, err := rlsched.NewPolicy(rlsched.AdaptiveRL)
	if err != nil {
		log.Fatal(err)
	}
	healthyEngine, err := rlsched.NewEngine(profile.Engine, platform, tasks, policy, rlsched.NewStream(1, "healthy"))
	if err != nil {
		log.Fatal(err)
	}
	healthy := healthyEngine.MustRun()

	// Failing run: same trace replayed from CSV on a freshly built
	// platform, with processors failing every ~500 time units on average
	// and 25-unit repairs.
	replayed, err := rlsched.ReadWorkloadTrace(strings.NewReader(traceCSV.String()))
	if err != nil {
		log.Fatal(err)
	}
	platform2, _, err := rlsched.BuildScenario(profile, spec)
	if err != nil {
		log.Fatal(err)
	}
	failCfg := profile.Engine
	failCfg.FailureMTBF = 500
	failCfg.RepairTime = 25
	policy2, err := rlsched.NewPolicy(rlsched.AdaptiveRL)
	if err != nil {
		log.Fatal(err)
	}
	failingEngine, err := rlsched.NewEngine(failCfg, platform2, replayed, policy2, rlsched.NewStream(1, "failing"))
	if err != nil {
		log.Fatal(err)
	}
	failing := failingEngine.MustRun()

	fmt.Printf("\n%-22s %-10s %-10s\n", "", "healthy", "failing")
	fmt.Printf("%-22s %-10.1f %-10.1f\n", "avg response time", healthy.AveRT, failing.AveRT)
	fmt.Printf("%-22s %-10.3f %-10.3f\n", "energy (millions)", healthy.ECS/1e6, failing.ECS/1e6)
	fmt.Printf("%-22s %-10.3f %-10.3f\n", "successful rate", healthy.SuccessRate, failing.SuccessRate)
	fmt.Printf("%-22s %-10d %-10d\n", "processor failures", healthy.Failures, failing.Failures)
	fmt.Printf("%-22s %-10d %-10d\n", "aborted executions", healthy.Restarts, failing.Restarts)
	fmt.Printf("%-22s %-10d %-10d\n", "tasks completed", healthy.Completed, failing.Completed)

	if failing.Completed != healthy.Completed {
		log.Fatal("resilience violated: not every task completed under failures")
	}
	fmt.Println("\nevery task completed despite failures: aborted executions were re-run.")
}
