package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Trace I/O: tasks serialise to a compact CSV so synthetic workloads can
// be exported, edited and replayed, and externally produced traces (e.g.
// converted cluster logs) can drive the simulator. The format is
//
//	id,arrival,size_mi,act,deadline,priority
//
// with priority one of low|medium|high. Runtime bookkeeping fields
// (start/finish times) are not part of the trace.

// traceHeader is the canonical column set.
var traceHeader = []string{"id", "arrival", "size_mi", "act", "deadline", "priority"}

// WriteTrace serialises tasks to CSV in arrival order.
func WriteTrace(w io.Writer, tasks []*Task) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(traceHeader); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	for _, t := range tasks {
		rec := []string{
			strconv.Itoa(t.ID),
			formatFloat(t.ArrivalTime),
			formatFloat(t.SizeMI),
			formatFloat(t.ACT),
			formatFloat(t.Deadline),
			t.Priority.String(),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("workload: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	return nil
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParsePriority converts the lowercase class name back to a Priority.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "low":
		return PriorityLow, nil
	case "medium":
		return PriorityMedium, nil
	case "high":
		return PriorityHigh, nil
	default:
		return 0, fmt.Errorf("workload: unknown priority %q", s)
	}
}

// ReadTrace parses a CSV trace. Every task is validated and the stream
// must be in non-decreasing arrival order (the engine requires it).
func ReadTrace(r io.Reader) ([]*Task, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(traceHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace header: %w", err)
	}
	for i, want := range traceHeader {
		if header[i] != want {
			return nil, fmt.Errorf("workload: trace header column %d is %q, want %q", i, header[i], want)
		}
	}
	var tasks []*Task
	prevArrival := -1.0
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		t, err := parseTraceRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		if t.ArrivalTime < prevArrival {
			return nil, fmt.Errorf("workload: line %d: arrivals out of order (%g after %g)",
				line, t.ArrivalTime, prevArrival)
		}
		prevArrival = t.ArrivalTime
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		tasks = append(tasks, t)
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("workload: trace holds no tasks")
	}
	return tasks, nil
}

func parseTraceRecord(rec []string) (*Task, error) {
	id, err := strconv.Atoi(rec[0])
	if err != nil {
		return nil, fmt.Errorf("bad id %q: %w", rec[0], err)
	}
	fields := make([]float64, 4)
	for i, raw := range rec[1:5] {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("bad %s %q: %w", traceHeader[i+1], raw, err)
		}
		fields[i] = v
	}
	prio, err := ParsePriority(rec[5])
	if err != nil {
		return nil, err
	}
	return &Task{
		ID:          id,
		ArrivalTime: fields[0],
		SizeMI:      fields[1],
		ACT:         fields[2],
		Deadline:    fields[3],
		Priority:    prio,
		StartTime:   -1,
		FinishTime:  -1,
	}, nil
}
