package experiments

import (
	"context"
	"testing"

	"rlsched/internal/sched"
)

// fastProfile shrinks the observation period so sweep tests stay quick.
func fastProfile() Profile {
	p := DefaultProfile()
	p.Replications = 1
	p.ObservationPeriod = 500
	return p
}

func TestDefaultProfileValid(t *testing.T) {
	if err := DefaultProfile().Validate(); err != nil {
		t.Fatalf("default profile invalid: %v", err)
	}
}

func TestProfileValidation(t *testing.T) {
	bad := []func(*Profile){
		func(p *Profile) { p.ObservationPeriod = 0 },
		func(p *Profile) { p.SizeScale = -1 },
		func(p *Profile) { p.Replications = 0 },
		func(p *Profile) { p.LightTasks = 0 },
		func(p *Profile) { p.HeavyTasks = p.LightTasks - 1 },
		func(p *Profile) { p.Platform.Sites = 0 },
		func(p *Profile) { p.Engine.TickInterval = 0 },
		func(p *Profile) { p.Mix.High = -1 },
	}
	for i, mutate := range bad {
		p := DefaultProfile()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestNewPolicyAllNames(t *testing.T) {
	for _, name := range append(AllPolicies, Greedy) {
		p, err := NewPolicy(name)
		if err != nil {
			t.Fatalf("NewPolicy(%s): %v", name, err)
		}
		if p == nil {
			t.Fatalf("NewPolicy(%s) returned nil", name)
		}
	}
	if _, err := NewPolicy("bogus"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestRunRejectsBadSpecs(t *testing.T) {
	p := fastProfile()
	if _, err := Run(p, RunSpec{Policy: AdaptiveRL, NumTasks: 0}); err == nil {
		t.Error("expected error for zero tasks")
	}
	if _, err := Run(p, RunSpec{Policy: "bogus", NumTasks: 100}); err == nil {
		t.Error("expected error for unknown policy")
	}
	bad := p
	bad.SizeScale = 0
	if _, err := Run(bad, RunSpec{Policy: AdaptiveRL, NumTasks: 100}); err == nil {
		t.Error("expected error for invalid profile")
	}
}

func TestBuildScenarioDeterministic(t *testing.T) {
	p := fastProfile()
	spec := RunSpec{Policy: AdaptiveRL, NumTasks: 100, Seed: 9}
	pl1, tasks1, err := Build(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	pl2, tasks2, err := Build(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if pl1.NumProcessors() != pl2.NumProcessors() {
		t.Fatal("platform not deterministic")
	}
	for i := range tasks1 {
		if tasks1[i].SizeMI != tasks2[i].SizeMI {
			t.Fatal("workload not deterministic")
		}
	}
}

func TestRunMatchesRunWith(t *testing.T) {
	p := fastProfile()
	spec := RunSpec{Policy: Greedy, NumTasks: 150, Seed: 4}
	a, err := Run(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := NewPolicy(Greedy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWith(p, spec, policy)
	if err != nil {
		t.Fatal(err)
	}
	if a.AveRT != b.AveRT || a.ECS != b.ECS {
		t.Fatal("Run and RunWith disagree for the same spec")
	}
}

func TestHeterogeneitySweepHoldsLoadConstant(t *testing.T) {
	p := fastProfile()
	// Mean platform speed is constant across the sweep, so total task
	// volume (and thus busy energy) should be comparable.
	a, err := Run(p, RunSpec{Policy: Greedy, NumTasks: 200, HeterogeneityCV: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, RunSpec{Policy: Greedy, NumTasks: 200, HeterogeneityCV: 0.9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ratio := a.ECS / b.ECS
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("energy drifted %.2fx across the heterogeneity sweep", ratio)
	}
}

func TestFigure12Shape(t *testing.T) {
	// Figure 12 is the cheapest full figure (Adaptive-RL only); verify
	// structure and that all points are positive.
	p := fastProfile()
	fig, err := Figure12(p)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "figure12" || len(fig.Series) != 2 {
		t.Fatalf("figure structure: %+v", fig)
	}
	for _, s := range fig.Series {
		if len(s.X) != len(HeterogeneityLevels) || len(s.Y) != len(s.X) {
			t.Fatalf("series %s has %d/%d points", s.Label, len(s.X), len(s.Y))
		}
		for _, y := range s.Y {
			if y <= 0 {
				t.Fatalf("series %s has non-positive energy %g", s.Label, y)
			}
		}
	}
	// Heavy load must consume more than light at every point.
	heavy, light := fig.Series[0], fig.Series[1]
	for i := range heavy.Y {
		if heavy.Y[i] <= light.Y[i] {
			t.Fatalf("heavy energy %g <= light %g at h=%g", heavy.Y[i], light.Y[i], heavy.X[i])
		}
	}
}

func TestFigureByIDDispatch(t *testing.T) {
	p := fastProfile()
	for _, alias := range []string{"12", "figure12"} {
		fig, err := FigureByID(p, alias)
		if err != nil {
			t.Fatalf("FigureByID(%s): %v", alias, err)
		}
		if fig.ID != "figure12" {
			t.Fatalf("FigureByID(%s) = %s", alias, fig.ID)
		}
	}
	if _, err := FigureByID(p, "13"); err == nil {
		t.Fatal("expected error for unknown figure")
	}
}

func TestUtilizationFigureStructure(t *testing.T) {
	p := fastProfile()
	p.LightTasks = 200
	fig, err := Figure10(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("expected 2 series, got %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		for i, u := range s.Y {
			if u < 0 || u > 1 {
				t.Fatalf("series %s utilisation %g out of [0,1]", s.Label, u)
			}
			if s.X[i] < 10 || s.X[i] > 100 {
				t.Fatalf("cycle fraction %g out of [10,100]", s.X[i])
			}
		}
	}
}

func TestPointStatAggregation(t *testing.T) {
	p := fastProfile()
	p.Replications = 3
	pt, err := runReplications(context.Background(), p, RunSpec{Policy: Greedy, NumTasks: 100},
		func(r sched.Result) float64 { return r.AveRT })
	if err != nil {
		t.Fatal(err)
	}
	if pt.N != 3 {
		t.Fatalf("aggregated %d replications, want 3", pt.N)
	}
	if pt.Mean <= 0 {
		t.Fatal("mean response time must be positive")
	}
	if pt.CI95 < 0 {
		t.Fatal("CI must be non-negative")
	}
}

func TestRunAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep")
	}
	p := fastProfile()
	p.LightTasks = 100
	p.HeavyTasks = 400
	arms := DefaultAblationArms()[:3] // keep the test quick
	results, err := RunAblations(p, arms)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.AveRT.Mean <= 0 || r.ECS.Mean <= 0 {
			t.Fatalf("degenerate arm %q: %+v", r.Arm, r)
		}
		if r.Success.Mean < 0 || r.Success.Mean > 1 {
			t.Fatalf("arm %q success out of range", r.Arm)
		}
	}
}

func TestRunAblationsBadProfile(t *testing.T) {
	p := fastProfile()
	p.SizeScale = -1
	if _, err := RunAblations(p, DefaultAblationArms()[:1]); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestExtensionFigureDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("extension sweep")
	}
	p := fastProfile()
	p.LightTasks, p.HeavyTasks = 100, 300
	for _, id := range []string{"E1", "E2", "E3"} {
		fig, err := ExtensionFigureByID(p, id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(fig.Series) == 0 {
			t.Fatalf("%s has no series", id)
		}
		for _, s := range fig.Series {
			if len(s.X) != len(s.Y) {
				t.Fatalf("%s series %s ragged", id, s.Label)
			}
		}
	}
	if _, err := ExtensionFigureByID(p, "E9"); err == nil {
		t.Fatal("expected error for unknown extension figure")
	}
}
