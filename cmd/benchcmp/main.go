// Command benchcmp compares current benchmark timings against the
// committed BENCH_*.json baselines and prints a warning table for
// regressions beyond a threshold.
//
// Usage:
//
//	benchcmp [-base BENCH_a.json,BENCH_b.json] [-input bench.out]
//	         [-threshold 0.20] [-benchtime 3x] [-strict]
//
// With no -input it runs `go test -bench` itself over the module for
// every baselined benchmark name. Regressions warn but exit 0 unless
// -strict is set, so a noisy laptop run never blocks a commit; CI reads
// the table from the step summary instead ($GITHUB_STEP_SUMMARY, when
// set, receives a markdown copy).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// benchRecord mirrors one entry in a BENCH_*.json "benchmarks" map. The
// before field is a pointer because first-appearance benchmarks commit
// `"before": null`.
type benchRecord struct {
	Before *benchSample `json:"before"`
	After  *benchSample `json:"after"`
}

type benchSample struct {
	NsPerOp float64 `json:"ns_per_op"`
}

// baseline is one benchmark's committed expectation and its provenance.
type baseline struct {
	name    string
	nsPerOp float64
	source  string
}

// row is one comparison outcome.
type row struct {
	baseline
	current float64
	delta   float64 // (current-baseline)/baseline
}

// run is the testable body of main; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseList := fs.String("base", "", "comma-separated baseline JSON files (default: BENCH_*.json in the working directory)")
	input := fs.String("input", "", "read `go test -bench` output from this file instead of running benchmarks")
	threshold := fs.Float64("threshold", 0.20, "relative ns/op slowdown that counts as a regression")
	benchtime := fs.String("benchtime", "3x", "-benchtime passed to go test when running benchmarks")
	strict := fs.Bool("strict", false, "exit non-zero when a regression is found")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var files []string
	if *baseList != "" {
		files = strings.Split(*baseList, ",")
	} else {
		var err error
		files, err = filepath.Glob("BENCH_*.json")
		if err != nil || len(files) == 0 {
			fmt.Fprintln(stderr, "benchcmp: no BENCH_*.json baselines found")
			return 2
		}
	}
	baselines, err := loadBaselines(files)
	if err != nil {
		fmt.Fprintln(stderr, "benchcmp:", err)
		return 2
	}

	var current map[string]float64
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintln(stderr, "benchcmp:", err)
			return 2
		}
		current, err = parseBenchOutput(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(stderr, "benchcmp:", err)
			return 2
		}
	} else {
		current, err = runBenchmarks(baselines, *benchtime, stderr)
		if err != nil {
			fmt.Fprintln(stderr, "benchcmp:", err)
			return 2
		}
	}

	rows, missing := compare(baselines, current)
	table := renderTable(rows, *threshold)
	fmt.Fprint(stdout, table)
	for _, name := range missing {
		fmt.Fprintf(stdout, "benchcmp: no current measurement for %s\n", name)
	}
	regressions := 0
	for _, r := range rows {
		if r.delta > *threshold {
			regressions++
		}
	}
	if path := os.Getenv("GITHUB_STEP_SUMMARY"); path != "" {
		if err := appendStepSummary(path, rows, *threshold); err != nil {
			fmt.Fprintln(stderr, "benchcmp:", err)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(stdout, "benchcmp: %d benchmark(s) regressed more than %.0f%% vs committed baselines\n",
			regressions, *threshold*100)
		if *strict {
			return 1
		}
		fmt.Fprintln(stdout, "benchcmp: warning only (pass -strict to fail); single-run timings are noisy")
	}
	return 0
}

// loadBaselines reads every file and keeps, per benchmark name, the
// slowest committed "after" figure: baselines from different PRs were
// measured on different container generations, and comparing against the
// most lenient committed claim avoids false alarms from machine drift.
func loadBaselines(files []string) (map[string]baseline, error) {
	out := make(map[string]baseline)
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var doc struct {
			Benchmarks map[string]benchRecord `json:"benchmarks"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		for name, rec := range doc.Benchmarks {
			if rec.After == nil || rec.After.NsPerOp <= 0 {
				continue
			}
			if prev, ok := out[name]; !ok || rec.After.NsPerOp > prev.nsPerOp {
				out[name] = baseline{name: name, nsPerOp: rec.After.NsPerOp, source: filepath.Base(path)}
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no usable benchmarks in %s", strings.Join(files, ", "))
	}
	return out, nil
}

// benchLine matches `BenchmarkName-8  3  123456 ns/op ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBenchOutput extracts ns/op per benchmark from `go test -bench`
// text output. Repeated runs of one benchmark keep the last figure.
func parseBenchOutput(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		out[m[1]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return out, nil
}

// runBenchmarks runs only the baselined benchmarks across the module.
func runBenchmarks(baselines map[string]baseline, benchtime string, stderr io.Writer) (map[string]float64, error) {
	names := make([]string, 0, len(baselines))
	for name := range baselines {
		names = append(names, "^"+name+"$")
	}
	sort.Strings(names)
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", strings.Join(names, "|"), "-benchtime", benchtime, "./...")
	cmd.Stderr = stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	return parseBenchOutput(strings.NewReader(string(out)))
}

// compare joins baselines with current measurements, sorted by name.
func compare(baselines map[string]baseline, current map[string]float64) ([]row, []string) {
	var rows []row
	var missing []string
	for name, b := range baselines {
		cur, ok := current[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		rows = append(rows, row{baseline: b, current: cur, delta: (cur - b.nsPerOp) / b.nsPerOp})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	sort.Strings(missing)
	return rows, missing
}

// renderTable prints the aligned comparison table.
func renderTable(rows []row, threshold float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %14s %14s %8s  %s\n", "benchmark", "baseline ns/op", "current ns/op", "delta", "baseline from")
	for _, r := range rows {
		flag := ""
		if r.delta > threshold {
			flag = "  REGRESSION"
		}
		fmt.Fprintf(&b, "%-28s %14.0f %14.0f %+7.1f%%  %s%s\n",
			r.name, r.nsPerOp, r.current, r.delta*100, r.source, flag)
	}
	return b.String()
}

// appendStepSummary appends a markdown copy of the table for the GitHub
// Actions job summary.
func appendStepSummary(path string, rows []row, threshold float64) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "### Benchmark comparison (threshold %.0f%%)\n\n", threshold*100)
	fmt.Fprintln(f, "| benchmark | baseline ns/op | current ns/op | delta | status |")
	fmt.Fprintln(f, "|---|---:|---:|---:|---|")
	for _, r := range rows {
		status := "ok"
		if r.delta > threshold {
			status = "⚠️ regression"
		}
		fmt.Fprintf(f, "| %s | %.0f | %.0f | %+.1f%% | %s |\n",
			r.name, r.nsPerOp, r.current, r.delta*100, status)
	}
	fmt.Fprintln(f)
	return nil
}
