package workload

import (
	"math"
	"testing"

	"rlsched/internal/rng"
	"rlsched/internal/stats"
)

func TestBurstyValidation(t *testing.T) {
	if err := DefaultBurstyConfig().Validate(); err != nil {
		t.Fatalf("default bursty config invalid: %v", err)
	}
	bad := []func(*BurstyConfig){
		func(c *BurstyConfig) { c.BurstFactor = 1 },
		func(c *BurstyConfig) { c.MeanBurstLen = 0 },
		func(c *BurstyConfig) { c.MeanGapLen = -1 },
		func(c *BurstyConfig) { c.NumTasks = 0 },
		// Burst so strong the gap phase would need negative rate:
		// f = 200/(200+50)=0.8, factor 2 -> gap scale (1-1.6)/0.2 < 0.
		func(c *BurstyConfig) { c.MeanBurstLen = 200; c.MeanGapLen = 50; c.BurstFactor = 2 },
	}
	for i, mutate := range bad {
		cfg := DefaultBurstyConfig()
		mutate(&cfg)
		if _, err := GenerateBursty(cfg, rng.NewStream(1, "b")); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestBurstyPreservesLongRunRate(t *testing.T) {
	cfg := DefaultBurstyConfig()
	cfg.NumTasks = 20000
	tasks, err := GenerateBursty(cfg, rng.NewStream(5, "b"))
	if err != nil {
		t.Fatal(err)
	}
	span := tasks[len(tasks)-1].ArrivalTime - tasks[0].ArrivalTime
	meanIAT := span / float64(len(tasks)-1)
	if math.Abs(meanIAT-cfg.MeanInterArrival) > 0.35 {
		t.Fatalf("long-run mean inter-arrival %g, want ~%g", meanIAT, cfg.MeanInterArrival)
	}
}

func TestBurstyIsBurstierThanPoisson(t *testing.T) {
	cfg := DefaultBurstyConfig()
	cfg.NumTasks = 20000
	bursty, err := GenerateBursty(cfg, rng.NewStream(7, "b"))
	if err != nil {
		t.Fatal(err)
	}
	plain := MustGenerate(cfg.GenConfig, rng.NewStream(7, "p"))

	cv := func(tasks []*Task) float64 {
		iats := make([]float64, 0, len(tasks)-1)
		for i := 1; i < len(tasks); i++ {
			iats = append(iats, tasks[i].ArrivalTime-tasks[i-1].ArrivalTime)
		}
		return stats.CV(iats)
	}
	cvPlain, cvBursty := cv(plain), cv(bursty)
	// Poisson inter-arrivals have CV 1; modulation must push it above.
	if math.Abs(cvPlain-1) > 0.1 {
		t.Fatalf("plain Poisson CV %g, want ~1", cvPlain)
	}
	if cvBursty < cvPlain+0.15 {
		t.Fatalf("bursty CV %g not above Poisson CV %g", cvBursty, cvPlain)
	}
}

func TestBurstyTasksValid(t *testing.T) {
	cfg := DefaultBurstyConfig()
	cfg.NumTasks = 2000
	tasks, err := GenerateBursty(cfg, rng.NewStream(9, "b"))
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, task := range tasks {
		if err := task.Validate(); err != nil {
			t.Fatal(err)
		}
		if task.ArrivalTime < prev {
			t.Fatal("arrivals out of order")
		}
		prev = task.ArrivalTime
	}
}

func TestBurstyDeterministic(t *testing.T) {
	cfg := DefaultBurstyConfig()
	cfg.NumTasks = 500
	a, _ := GenerateBursty(cfg, rng.NewStream(3, "b"))
	b, _ := GenerateBursty(cfg, rng.NewStream(3, "b"))
	for i := range a {
		if a[i].ArrivalTime != b[i].ArrivalTime || a[i].SizeMI != b[i].SizeMI {
			t.Fatal("bursty generation not deterministic")
		}
	}
}
