package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "flag provided but not defined") {
		t.Fatalf("stderr: %q", errOut.String())
	}
}

func TestRunBadPolicy(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-policy", "bogus", "-n", "10"}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if errOut.Len() == 0 {
		t.Fatal("no error printed")
	}
}

func TestRunTiny(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-policy", "greedy", "-n", "20"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr=%q", code, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"policy            greedy", "20 submitted", "avg response time", "energy (ECS)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("stdout missing %q:\n%s", want, s)
		}
	}
}

func TestRunDumpGantt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gantt.csv")
	var out, errOut bytes.Buffer
	if code := run([]string{"-policy", "greedy", "-n", "20", "-dump-gantt", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr=%q", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("gantt CSV empty")
	}
}

func TestVersionFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-version"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr=%q", code, errOut.String())
	}
	if !strings.HasPrefix(out.String(), "rlsim ") || !strings.Contains(out.String(), "go1") {
		t.Fatalf("version output: %q", out.String())
	}
}
