package config

import (
	"fmt"
	"net/url"
	"strings"
)

// CacheSpec configures the daemon's content-addressed result cache. The
// zero value is valid: a memory-only cache with the cache package's
// default capacity.
type CacheSpec struct {
	// Dir is the on-disk spool for cache entries; empty keeps the cache
	// memory-only (entries die with the process).
	Dir string `json:"dir,omitempty"`
	// MaxEntries bounds the in-memory LRU tier; 0 selects the cache
	// package's default.
	MaxEntries int `json:"max_entries,omitempty"`
}

// Validate rejects malformed cache blocks.
func (c CacheSpec) Validate() error {
	if c.MaxEntries < 0 {
		return fmt.Errorf("config: cache max_entries must be >= 0, got %d", c.MaxEntries)
	}
	return nil
}

// ClusterSpec configures the daemon's cluster role. The zero value is a
// plain standalone daemon. Setting Peers makes it a coordinator that
// fans campaign points out to worker daemons; setting Worker makes it a
// worker (it serves leased points but never fans out itself). The two
// roles are mutually exclusive.
type ClusterSpec struct {
	// Peers lists worker base URLs (e.g. "http://10.0.0.2:7077") the
	// coordinator fans campaign points out to. Workers can also join at
	// runtime via POST /v1/cluster/register.
	Peers []string `json:"peers,omitempty"`
	// Worker marks this daemon as a cluster worker: it accepts leased
	// points over the normal job API but never dispatches to peers.
	Worker bool `json:"worker,omitempty"`
	// HeartbeatSec is the coordinator's health-probe interval in
	// seconds; 0 selects the cluster package's default.
	HeartbeatSec float64 `json:"heartbeat_sec,omitempty"`
	// DeadAfterSec is how long a worker may miss heartbeats before its
	// leases are re-issued elsewhere; 0 selects the cluster package's
	// default.
	DeadAfterSec float64 `json:"dead_after_sec,omitempty"`
	// ProbeTimeoutSec bounds a single health probe in seconds; 0 selects
	// the cluster package's default. Must stay below the heartbeat
	// interval or probes of a black-holed worker pile up on each other.
	ProbeTimeoutSec float64 `json:"probe_timeout_sec,omitempty"`
	// BreakerThreshold is how many consecutive lease/probe failures trip
	// a worker's circuit breaker; 0 selects the cluster package's
	// default.
	BreakerThreshold int `json:"breaker_threshold,omitempty"`
	// BreakerCooldownSec is how long a tripped breaker blocks all
	// traffic to its worker before the half-open trial probe; 0 selects
	// the cluster package's default (2x the heartbeat).
	BreakerCooldownSec float64 `json:"breaker_cooldown_sec,omitempty"`
	// HedgeAfterSec floors the straggler-hedge deadline in seconds: a
	// leased point must run at least this long (and past 3x the p95
	// lease latency) before it is duplicated to a second worker. 0
	// selects the cluster package's default; negative disables hedging.
	HedgeAfterSec float64 `json:"hedge_after_sec,omitempty"`
}

// Coordinator reports whether the spec configures fan-out to peers.
func (c ClusterSpec) Coordinator() bool { return len(c.Peers) > 0 }

// Validate rejects malformed cluster blocks: conflicting roles,
// unparsable peer URLs, negative intervals.
func (c ClusterSpec) Validate() error {
	if c.Worker && len(c.Peers) > 0 {
		return fmt.Errorf("config: a daemon is either a worker or a coordinator with peers, not both")
	}
	if c.HeartbeatSec < 0 {
		return fmt.Errorf("config: cluster heartbeat_sec must be >= 0, got %g", c.HeartbeatSec)
	}
	if c.DeadAfterSec < 0 {
		return fmt.Errorf("config: cluster dead_after_sec must be >= 0, got %g", c.DeadAfterSec)
	}
	if c.ProbeTimeoutSec < 0 {
		return fmt.Errorf("config: cluster probe_timeout_sec must be >= 0, got %g", c.ProbeTimeoutSec)
	}
	if c.BreakerThreshold < 0 {
		return fmt.Errorf("config: cluster breaker_threshold must be >= 0, got %d", c.BreakerThreshold)
	}
	if c.BreakerCooldownSec < 0 {
		return fmt.Errorf("config: cluster breaker_cooldown_sec must be >= 0, got %g", c.BreakerCooldownSec)
	}
	// The probe timeout must fit inside the heartbeat interval, or the
	// probes of a black-holed worker overlap. 5s mirrors the cluster
	// package's default heartbeat.
	heartbeat := c.HeartbeatSec
	if heartbeat == 0 {
		heartbeat = 5
	}
	if c.ProbeTimeoutSec >= heartbeat {
		return fmt.Errorf("config: cluster probe_timeout_sec (%g) must be below the heartbeat interval (%gs)",
			c.ProbeTimeoutSec, heartbeat)
	}
	if c.DeadAfterSec > 0 && c.DeadAfterSec < heartbeat {
		return fmt.Errorf("config: cluster dead_after_sec (%g) must be at least one heartbeat interval (%gs)",
			c.DeadAfterSec, heartbeat)
	}
	seen := make(map[string]bool, len(c.Peers))
	for _, p := range c.Peers {
		u, err := url.Parse(p)
		if err != nil || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
			return fmt.Errorf("config: cluster peer %q is not an http(s) base URL", p)
		}
		key := strings.TrimSuffix(p, "/")
		if seen[key] {
			return fmt.Errorf("config: duplicate cluster peer %q", p)
		}
		seen[key] = true
	}
	return nil
}
