package obs

import (
	"runtime"
	"time"
)

// Sampler periodically publishes Go runtime health gauges — goroutine
// count, heap bytes and objects, cumulative GC pause seconds and GC
// cycles — plus an optional caller hook for process-specific gauges
// (queue depth, worker utilisation). It samples once synchronously on
// start so the first scrape after construction is already populated.
type Sampler struct {
	reg    *Registry
	hook   func(*Registry)
	stop   chan struct{}
	done   chan struct{}
	ticker *time.Ticker

	goroutines *Gauge
	heapAlloc  *Gauge
	heapObj    *Gauge
	gcPauses   *Gauge
	gcCycles   *Gauge
}

// StartSampler launches the runtime sampler goroutine publishing into
// reg every interval. hook, when non-nil, runs after each runtime sample
// with the registry, letting the owner refresh its own sampled gauges on
// the same cadence. Returns nil when reg is nil. Stop the sampler before
// discarding it.
func StartSampler(reg *Registry, interval time.Duration, hook func(*Registry)) *Sampler {
	if reg == nil {
		return nil
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	s := &Sampler{
		reg:        reg,
		hook:       hook,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		ticker:     time.NewTicker(interval),
		goroutines: reg.Gauge("go_goroutines", "Number of live goroutines."),
		heapAlloc:  reg.Gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects."),
		heapObj:    reg.Gauge("go_heap_objects", "Number of allocated heap objects."),
		gcPauses:   reg.Gauge("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause seconds."),
		gcCycles:   reg.Gauge("go_gc_cycles_total", "Completed GC cycles."),
	}
	s.sample()
	go s.loop()
	return s
}

func (s *Sampler) loop() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			return
		case <-s.ticker.C:
			s.sample()
		}
	}
}

// sample reads the runtime stats once and refreshes every gauge.
func (s *Sampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.goroutines.Set(float64(runtime.NumGoroutine()))
	s.heapAlloc.Set(float64(ms.HeapAlloc))
	s.heapObj.Set(float64(ms.HeapObjects))
	s.gcPauses.Set(float64(ms.PauseTotalNs) / 1e9)
	s.gcCycles.Set(float64(ms.NumGC))
	if s.hook != nil {
		s.hook(s.reg)
	}
}

// Stop halts the sampler and waits for its goroutine to exit. Nil-safe.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.ticker.Stop()
	close(s.stop)
	<-s.done
}
