package audit

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rlsched/internal/grouping"
	"rlsched/internal/memory"
	"rlsched/internal/probe"
)

// Log is the wire snapshot of one run's decision audit.
type Log struct {
	// Total counts every decision the run made; Retained is how many the
	// bounded reservoir kept (every Stride-th one).
	Total    uint64 `json:"total"`
	Retained int    `json:"retained"`
	Stride   uint64 `json:"stride"`
	// Decided counts re-decisions (explore/exploit/fallback) and Fed how
	// many decisions received their group's dual feedback.
	Decided uint64 `json:"decided"`
	Fed     uint64 `json:"fed"`
	// Kinds counts decisions by kind over the whole run.
	Kinds map[string]uint64 `json:"kinds"`
	// ExplorationRatio is explored/decided over the whole run.
	ExplorationRatio float64 `json:"exploration_ratio"`
	// Decisions holds the retained decisions in Seq order.
	Decisions []Decision `json:"decisions"`
	// Curves are the learning-curve series (reward, td_error, epsilon,
	// exploration_ratio, memory_hit_rate, plus per-agent reward/td_error
	// for the first MaxAgentSeries agents).
	Curves []probe.Series `json:"curves,omitempty"`
}

// RunLog bundles one simulation point's decision log with its identity
// inside a campaign: the point's index in the expanded spec list and
// its canonical label (experiments.PointLabel) — the same self-
// describing convention probe.RunSeries uses, so campaign exports carry
// which point each row belongs to.
type RunLog struct {
	Index int    `json:"index"`
	Label string `json:"label"`
	Log
}

// csvHeader is the fixed column set of the decisions CSV export. The
// label column stamps experiments.PointLabel on every row so a
// multi-point campaign export is self-describing.
var csvHeader = []string{
	"run", "label", "seq", "t", "agent", "kind",
	"opnum", "mode",
	"load", "free_slots", "mean_power", "site_load",
	"epsilon", "fed", "reward", "error", "feedback_at",
	"candidates",
}

// formatFloat renders a float the shortest way that parses back to the
// same bits, so CSV round-trips are exact.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Candidate list encoding inside the one CSV cell: candidates joined by
// '|', fields by ';' — agent;cycle;opnum;mode;similarity;lval;score.
// Neither separator can appear in a formatted int or float.
func formatCandidates(cs []memory.Candidate) string {
	if len(cs) == 0 {
		return ""
	}
	var b strings.Builder
	for i, c := range cs {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.Itoa(c.AgentID))
		b.WriteByte(';')
		b.WriteString(strconv.Itoa(c.Cycle))
		b.WriteByte(';')
		b.WriteString(strconv.Itoa(c.Action.Opnum))
		b.WriteByte(';')
		b.WriteString(strconv.Itoa(int(c.Action.Mode)))
		b.WriteByte(';')
		b.WriteString(formatFloat(c.Similarity))
		b.WriteByte(';')
		b.WriteString(formatFloat(c.LVal))
		b.WriteByte(';')
		b.WriteString(formatFloat(c.Score))
	}
	return b.String()
}

func parseCandidates(s string) ([]memory.Candidate, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, "|")
	out := make([]memory.Candidate, 0, len(parts))
	for _, p := range parts {
		f := strings.Split(p, ";")
		if len(f) != 7 {
			return nil, fmt.Errorf("candidate %q has %d fields, want 7", p, len(f))
		}
		agent, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("candidate agent %q: %w", f[0], err)
		}
		cycle, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("candidate cycle %q: %w", f[1], err)
		}
		opnum, err := strconv.Atoi(f[2])
		if err != nil {
			return nil, fmt.Errorf("candidate opnum %q: %w", f[2], err)
		}
		mode, err := strconv.Atoi(f[3])
		if err != nil {
			return nil, fmt.Errorf("candidate mode %q: %w", f[3], err)
		}
		sim, err := strconv.ParseFloat(f[4], 64)
		if err != nil {
			return nil, fmt.Errorf("candidate similarity %q: %w", f[4], err)
		}
		lval, err := strconv.ParseFloat(f[5], 64)
		if err != nil {
			return nil, fmt.Errorf("candidate lval %q: %w", f[5], err)
		}
		score, err := strconv.ParseFloat(f[6], 64)
		if err != nil {
			return nil, fmt.Errorf("candidate score %q: %w", f[6], err)
		}
		out = append(out, memory.Candidate{
			AgentID:    agent,
			Cycle:      cycle,
			Action:     memory.Action{Opnum: opnum, Mode: grouping.Mode(mode)},
			Similarity: sim,
			LVal:       lval,
			Score:      score,
		})
	}
	return out, nil
}

// WriteDecisionsCSV renders recorded runs as CSV, one row per retained
// decision. The daemon's /v1/jobs/{id}/decisions?format=csv response
// and the CLI's -decisions-csv export both call this, so the two
// outputs are byte-identical for the same recorded data.
func WriteDecisionsCSV(w io.Writer, runs []RunLog) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	row := make([]string, len(csvHeader))
	for _, run := range runs {
		row[0] = strconv.Itoa(run.Index)
		row[1] = run.Label
		for _, d := range run.Decisions {
			row[2] = strconv.FormatUint(d.Seq, 10)
			row[3] = formatFloat(d.T)
			row[4] = strconv.Itoa(d.Agent)
			row[5] = d.Kind
			row[6] = strconv.Itoa(d.Action.Opnum)
			row[7] = strconv.Itoa(int(d.Action.Mode))
			row[8] = formatFloat(d.State.Load)
			row[9] = formatFloat(d.State.FreeSlots)
			row[10] = formatFloat(d.State.MeanPower)
			row[11] = formatFloat(d.State.SiteLoad)
			row[12] = formatFloat(d.Epsilon)
			row[13] = strconv.FormatBool(d.Fed)
			row[14] = formatFloat(d.Reward)
			row[15] = formatFloat(d.Error)
			row[16] = formatFloat(d.FeedbackAt)
			row[17] = formatCandidates(d.Candidates)
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadDecisionsCSV parses WriteDecisionsCSV output back into runs,
// preserving run and decision order. Only per-decision columns round-
// trip; aggregate fields (Total, Kinds, Curves) are not in the CSV and
// stay zero. It exists so exports round-trip in tests and downstream
// tooling.
func ReadDecisionsCSV(r io.Reader) ([]RunLog, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("audit: reading CSV header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("audit: CSV column %d = %q, want %q", i, header[i], want)
		}
	}
	var (
		runs []RunLog
		line = 1
	)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("audit: CSV line %d: %w", line, err)
		}
		index, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("audit: CSV line %d: bad run index %q", line, rec[0])
		}
		var d Decision
		if d.Seq, err = strconv.ParseUint(rec[2], 10, 64); err != nil {
			return nil, fmt.Errorf("audit: CSV line %d: bad seq %q", line, rec[2])
		}
		fields := []struct {
			dst *float64
			col int
		}{
			{&d.T, 3}, {&d.State.Load, 8}, {&d.State.FreeSlots, 9},
			{&d.State.MeanPower, 10}, {&d.State.SiteLoad, 11},
			{&d.Epsilon, 12}, {&d.Reward, 14}, {&d.Error, 15}, {&d.FeedbackAt, 16},
		}
		for _, f := range fields {
			if *f.dst, err = strconv.ParseFloat(rec[f.col], 64); err != nil {
				return nil, fmt.Errorf("audit: CSV line %d: bad %s %q", line, csvHeader[f.col], rec[f.col])
			}
		}
		if d.Agent, err = strconv.Atoi(rec[4]); err != nil {
			return nil, fmt.Errorf("audit: CSV line %d: bad agent %q", line, rec[4])
		}
		d.Kind = rec[5]
		if d.Action.Opnum, err = strconv.Atoi(rec[6]); err != nil {
			return nil, fmt.Errorf("audit: CSV line %d: bad opnum %q", line, rec[6])
		}
		mode, err := strconv.Atoi(rec[7])
		if err != nil {
			return nil, fmt.Errorf("audit: CSV line %d: bad mode %q", line, rec[7])
		}
		d.Action.Mode = grouping.Mode(mode)
		if d.Fed, err = strconv.ParseBool(rec[13]); err != nil {
			return nil, fmt.Errorf("audit: CSV line %d: bad fed %q", line, rec[13])
		}
		if d.Candidates, err = parseCandidates(rec[17]); err != nil {
			return nil, fmt.Errorf("audit: CSV line %d: %w", line, err)
		}
		if len(runs) == 0 || runs[len(runs)-1].Index != index || runs[len(runs)-1].Label != rec[1] {
			runs = append(runs, RunLog{Index: index, Label: rec[1]})
		}
		run := &runs[len(runs)-1]
		run.Decisions = append(run.Decisions, d)
		run.Retained = len(run.Decisions)
	}
	return runs, nil
}
