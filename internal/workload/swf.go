package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// SWF import: the Standard Workload Format of the Parallel Workloads
// Archive (Feitelson et al.) is the de-facto trace format for cluster and
// grid logs. ReadSWF converts SWF jobs into this library's task model so
// real recorded workloads can drive the simulator in place of the §V.A
// synthetic generator.
//
// Mapping: each SWF job becomes one computation-intensive task. The job's
// run time (field 4) times the reference speed gives the computational
// size; the requested time (field 9, falling back to run time) anchors the
// deadline; submit time (field 2) is the arrival. Jobs with unknown
// (negative) run times are skipped.

// SWFConfig controls the conversion.
type SWFConfig struct {
	// RefSpeedMIPS converts seconds of recorded run time into MI
	// (size = runtime · RefSpeedMIPS); it should be the §III.A referred
	// slowest speed of the platform the trace will run on.
	RefSpeedMIPS float64
	// TimeScale converts recorded seconds into simulation time units
	// (e.g. 0.01 compresses an hour of trace to 36 units).
	TimeScale float64
	// DeadlineSlack is the minimum slack fraction granted on top of the
	// requested time, so converted deadlines stay within the §III.A band
	// [0, 1.5]·ACT after clamping.
	DeadlineSlack float64
	// MaxTasks bounds the import (0 = no bound).
	MaxTasks int
}

// DefaultSWFConfig returns a conversion that preserves trace seconds as
// time units against a 500 MIPS reference.
func DefaultSWFConfig() SWFConfig {
	return SWFConfig{RefSpeedMIPS: 500, TimeScale: 1, DeadlineSlack: 0.2}
}

// Validate checks the conversion parameters.
func (c SWFConfig) Validate() error {
	switch {
	case c.RefSpeedMIPS <= 0:
		return fmt.Errorf("workload: RefSpeedMIPS must be positive, got %g", c.RefSpeedMIPS)
	case c.TimeScale <= 0:
		return fmt.Errorf("workload: TimeScale must be positive, got %g", c.TimeScale)
	case c.DeadlineSlack < 0 || c.DeadlineSlack > MaxSlack:
		return fmt.Errorf("workload: DeadlineSlack %g out of [0, %g]", c.DeadlineSlack, MaxSlack)
	case c.MaxTasks < 0:
		return fmt.Errorf("workload: negative MaxTasks")
	}
	return nil
}

// ReadSWF parses an SWF trace into tasks, in arrival order.
func ReadSWF(r io.Reader, cfg SWFConfig) ([]*Task, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var tasks []*Task
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	prevArrival := -1.0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, ";") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 9 {
			return nil, fmt.Errorf("workload: swf line %d: %d fields, want >= 9", line, len(fields))
		}
		submit, err1 := strconv.ParseFloat(fields[1], 64)
		runtime, err2 := strconv.ParseFloat(fields[3], 64)
		requested, err3 := strconv.ParseFloat(fields[8], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("workload: swf line %d: unparseable numeric field", line)
		}
		if runtime <= 0 {
			continue // unknown or zero run time: skip, per archive convention
		}
		if submit < 0 {
			return nil, fmt.Errorf("workload: swf line %d: negative submit time", line)
		}
		if requested < runtime {
			requested = runtime
		}

		arrival := submit * cfg.TimeScale
		if arrival < prevArrival {
			return nil, fmt.Errorf("workload: swf line %d: submit times out of order", line)
		}
		prevArrival = arrival
		act := runtime * cfg.TimeScale
		size := act * cfg.RefSpeedMIPS
		// Deadline from the requested time plus the configured slack,
		// clamped into the §III.A band so priorities stay meaningful.
		deadline := requested * cfg.TimeScale * (1 + cfg.DeadlineSlack)
		if max := act * (1 + MaxSlack); deadline > max {
			deadline = max
		}
		if deadline < act {
			deadline = act
		}
		slack := deadline/act - 1
		t := &Task{
			ID:          len(tasks),
			SizeMI:      size,
			ACT:         act,
			Deadline:    deadline,
			Priority:    PriorityFromSlack(slack),
			ArrivalTime: arrival,
			StartTime:   -1,
			FinishTime:  -1,
		}
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("workload: swf line %d: %w", line, err)
		}
		tasks = append(tasks, t)
		if cfg.MaxTasks > 0 && len(tasks) >= cfg.MaxTasks {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("workload: swf trace holds no usable jobs")
	}
	return tasks, nil
}
