package sched

import (
	"testing"

	"rlsched/internal/probe"
)

// TestProbedRunIdenticalResults pins the probe contract: sampling is
// read-only with respect to simulation outcomes, so a probed run's
// Result matches an unprobed run of the same spec byte for byte except
// for the instrumentation counters (the sampling events themselves add
// to the DES event count).
func TestProbedRunIdenticalResults(t *testing.T) {
	plain := statsScenario(t, 11, DefaultConfig()).MustRun()

	cfg := DefaultConfig()
	cfg.Probe = probe.NewRecorder(probe.Config{Cadence: 10})
	probed := statsScenario(t, 11, cfg).MustRun()

	if probed.Stats.Events <= plain.Stats.Events {
		t.Errorf("probed run counted %d events, want more than unprobed %d (sampling events)",
			probed.Stats.Events, plain.Stats.Events)
	}
	// Everything except the event counters must be identical.
	probed.Stats, plain.Stats = RunStats{}, RunStats{}
	if probed.AveRT != plain.AveRT ||
		probed.ECS != plain.ECS || probed.EndTime != plain.EndTime ||
		probed.Completed != plain.Completed || probed.SuccessRate != plain.SuccessRate ||
		probed.MeanWait != plain.MeanWait || probed.MeanUtilization != plain.MeanUtilization {
		t.Fatalf("probe changed simulation outcomes:\nprobed   %+v\nunprobed %+v", probed, plain)
	}
}

// TestProbeRecordsAllFamilies checks that an engine run populates every
// series family with plausible values.
func TestProbeRecordsAllFamilies(t *testing.T) {
	rec := probe.NewRecorder(probe.Config{Cadence: 10})
	cfg := DefaultConfig()
	cfg.Probe = rec
	res := statsScenario(t, 11, cfg).MustRun()

	series, _ := rec.Snapshot()
	byFamily := map[string]int{}
	byName := map[string]probe.Series{}
	for _, s := range series {
		byFamily[s.Family]++
		byName[s.Name] = s
		if len(s.Points) == 0 {
			t.Errorf("series %s recorded no points", s.Name)
		}
	}
	// The stats scenario has 2 sites: 2 queue-depth + 2 backlog series.
	if byFamily[probe.FamilyQueue] != 4 {
		t.Errorf("queue family has %d series, want 4 (2 sites x depth+backlog)", byFamily[probe.FamilyQueue])
	}
	if byFamily[probe.FamilyUtil] != 2 {
		t.Errorf("util family has %d series, want 2", byFamily[probe.FamilyUtil])
	}
	for _, want := range []string{"power.draw", "energy.total", "rl.reward", "rl.error", "rl.hit_rate", "group.mean_size"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("series %q missing (have %v)", want, byFamily)
		}
	}
	// Cumulative energy must be nondecreasing and end near the result's
	// total (the last sample is taken at run end, so it matches exactly).
	en := byName["energy.total"].Points
	for i := 1; i < len(en); i++ {
		if en[i].V < en[i-1].V {
			t.Fatalf("cumulative energy decreased: %v -> %v", en[i-1], en[i])
		}
	}
	if got := en[len(en)-1].V; got != res.ECS {
		t.Errorf("final energy sample %g != result ECS %g", got, res.ECS)
	}
	// Utilization is a fraction.
	for _, s := range series {
		if s.Family != probe.FamilyUtil {
			continue
		}
		for _, p := range s.Points {
			if p.V < 0 || p.V > 1 {
				t.Fatalf("utilization sample %v outside [0,1] in %s", p, s.Name)
			}
		}
	}
}

// TestProbeFamilySelection checks the engine honours the recorder's
// family selection: unselected families get no series at all.
func TestProbeFamilySelection(t *testing.T) {
	rec := probe.NewRecorder(probe.Config{Cadence: 10, Series: []string{probe.FamilyPower}})
	cfg := DefaultConfig()
	cfg.Probe = rec
	statsScenario(t, 11, cfg).MustRun()
	series, _ := rec.Snapshot()
	if len(series) != 1 || series[0].Name != "power.draw" {
		names := make([]string, len(series))
		for i, s := range series {
			names[i] = s.Name
		}
		t.Fatalf("selected only power, recorded %v", names)
	}
}

// TestNilProbeAllocsNothing extends the disabled-instrumentation
// contract to the probe hook: the nil-Probe guards the engine runs are
// branch-only, so an unprobed run pays zero allocations for the
// subsystem's existence.
func TestNilProbeAllocsNothing(t *testing.T) {
	e := statsScenario(t, 3, DefaultConfig())
	if allocs := testing.AllocsPerRun(1000, func() {
		if e.cfg.Probe != nil {
			e.attachProbes()
		}
		if e.cfg.Probe != nil {
			e.cfg.Probe.SampleNow(0)
		}
	}); allocs != 0 {
		t.Fatalf("nil-probe guard path allocates %.1f per op, want 0", allocs)
	}
}
