package config

import (
	"bytes"
	"encoding/json"
	"fmt"

	"rlsched/internal/audit"
	"rlsched/internal/experiments"
	"rlsched/internal/probe"
)

// Job kinds accepted by JobSpec.Kind.
const (
	// JobFigure regenerates one evaluation figure (or "all" paper
	// figures) under the job's profile.
	JobFigure = "figure"
	// JobPoints runs an explicit list of simulation points, exactly as
	// given (no replication expansion) — the cmd/sweep shape.
	JobPoints = "points"
	// JobScale runs one large-scale streaming scenario (see
	// experiments.ScaleConfig): thousands of sites, a lazily generated
	// arrival stream, O(active) memory. The job's profile is ignored —
	// scale scenarios derive everything from the scale block.
	JobScale = "scale"
)

// JobSpec is the wire schema of one simulation job submitted to the
// rlsimd daemon (POST /v1/jobs): a File-style profile plus what to run
// under it. Unknown keys are rejected on decode and specs are validated
// before they are queued, so a job that parses is a job that runs.
type JobSpec struct {
	// Description is free-form text carried along with the job.
	Description string `json:"description,omitempty"`
	// Kind selects the job shape: JobFigure or JobPoints. Required.
	Kind string `json:"kind"`
	// Figure identifies the figure for JobFigure jobs: "7".."12",
	// "E1".."E3", their "figureN" forms, or "all" for the six paper
	// figures. Stored canonically after Normalize.
	Figure string `json:"figure,omitempty"`
	// Points lists the simulation points for JobPoints jobs.
	Points []experiments.RunSpec `json:"points,omitempty"`
	// Scale configures JobScale jobs.
	Scale *ScaleSpec `json:"scale,omitempty"`
	// TimeoutSec bounds the job's wall-clock runtime in seconds; 0 means
	// no deadline. The daemon enforces it through the job's context,
	// which the runner checks between simulation points, so a job
	// overshoots its deadline by at most one point before settling as
	// "timeout".
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	// MaxRetries is how many additional times the daemon re-runs the job
	// after a transient infrastructure fault (see server.ErrTransient).
	// Deterministic failures — invalid points, model bugs — are never
	// retried: re-running them reproduces the same failure. 0 means a
	// single attempt.
	MaxRetries int `json:"max_retries,omitempty"`
	// Trace, when true, attaches a bounded ring tracer to the job's
	// engine runs; the retained events are served by GET
	// /v1/jobs/{id}/trace. Off by default: an untraced job pays no
	// tracing cost at all (the endpoint then returns 404).
	Trace bool `json:"trace,omitempty"`
	// Spans, when true, records a distributed span trace of the job's
	// execution pipeline — cache lookups, cluster lease attempts (hedges
	// and retries included), worker-side engine runs — stitched across
	// daemons via a traceparent header and served by GET
	// /v1/jobs/{id}/spans (append ?format=html for a waterfall view).
	// Off by default: an untraced job pays one nil check per hook site,
	// the endpoint returns 404, and results are byte-identical either
	// way.
	Spans bool `json:"spans,omitempty"`
	// KeepResults, valid for JobPoints jobs only, makes the daemon
	// retain every point's full engine result (util windows, run stats,
	// series payloads) and serve them via GET
	// /v1/jobs/{id}/result?view=full. This is the cluster lease shape:
	// a coordinator needs the worker's full results, not the summary, to
	// assemble figures byte-identically. Off by default — full results
	// for a large campaign can dwarf the summary.
	KeepResults bool `json:"keep_results,omitempty"`
	// Series, when present, records simulation-domain time series for
	// every point the job runs; they are served by GET
	// /v1/jobs/{id}/series (and streamed live by .../series/stream).
	// Absent by default: an unprobed job pays no sampling cost at all
	// (the endpoints then return 404).
	Series *SeriesSpec `json:"series,omitempty"`
	// Decisions, when present, attaches a decision-audit recorder to every
	// point the job runs: each scheduling decision's state, candidate
	// scores, explore-vs-exploit kind and reward feedback is kept in a
	// bounded reservoir and served by GET /v1/jobs/{id}/decisions (JSON,
	// ?format=csv, ?format=html policy report; streamed live by
	// .../decisions/stream). Absent by default: an unaudited job pays no
	// audit cost at all (the endpoints then return 404) and its results
	// are byte-identical to an audited run's.
	Decisions *DecisionsSpec `json:"decisions,omitempty"`
	// Profile holds every experiment knob; omitted fields keep the
	// default profile's values, exactly like File.Profile.
	Profile experiments.Profile `json:"profile"`
}

// SeriesSpec configures simulation-state probes for a job: how often to
// sample, how many points to retain per series, and which series
// families to record. The zero value selects the probe package's
// defaults and all families.
type SeriesSpec struct {
	// Cadence is the sim-time interval between samples; 0 selects the
	// probe default.
	Cadence float64 `json:"cadence,omitempty"`
	// MaxPoints bounds retained points per series before merge-adjacent
	// downsampling; 0 selects the probe default.
	MaxPoints int `json:"max_points,omitempty"`
	// Select lists the series families to record (see probe.Families);
	// empty records all of them.
	Select []string `json:"select,omitempty"`
}

// DecisionsSpec configures the decision-audit recorder for a job. The
// zero value selects the audit package's defaults.
type DecisionsSpec struct {
	// MaxDecisions bounds retained decisions per point before
	// stride-doubling decimation; 0 selects the audit default.
	MaxDecisions int `json:"max_decisions,omitempty"`
	// TopK bounds the candidate actions captured per decision; 0 selects
	// the audit default.
	TopK int `json:"top_k,omitempty"`
	// MaxPoints bounds retained learning-curve points per series; 0
	// selects the audit default.
	MaxPoints int `json:"max_points,omitempty"`
}

// AuditConfig translates the spec into the audit package's config.
func (s *DecisionsSpec) AuditConfig() audit.Config {
	if s == nil {
		return audit.Config{}
	}
	return audit.Config{MaxDecisions: s.MaxDecisions, TopK: s.TopK, MaxPoints: s.MaxPoints}
}

// validate rejects malformed decisions blocks.
func (s *DecisionsSpec) validate() error {
	if s == nil {
		return nil
	}
	if s.MaxDecisions < 0 {
		return fmt.Errorf("config: decisions max_decisions must be >= 0, got %d", s.MaxDecisions)
	}
	if s.TopK < 0 {
		return fmt.Errorf("config: decisions top_k must be >= 0, got %d", s.TopK)
	}
	if s.MaxPoints < 0 {
		return fmt.Errorf("config: decisions max_points must be >= 0, got %d", s.MaxPoints)
	}
	return nil
}

// ScaleSpec is the wire form of one large-scale streaming scenario: a
// preset name plus optional overrides.
type ScaleSpec struct {
	// Preset names the scenario size: "small", "medium" or "large".
	Preset string `json:"preset"`
	// Sites and NumTasks override the preset when positive.
	Sites    int `json:"sites,omitempty"`
	NumTasks int `json:"num_tasks,omitempty"`
	// Policy overrides the preset's policy when non-empty.
	Policy experiments.PolicyName `json:"policy,omitempty"`
	// Seed overrides the preset's seed when non-zero.
	Seed uint64 `json:"seed,omitempty"`
}

// Config resolves the spec into a runnable experiments.ScaleConfig.
func (s *ScaleSpec) Config() (experiments.ScaleConfig, error) {
	if s == nil {
		return experiments.ScaleConfig{}, fmt.Errorf("config: %q job needs a scale block", JobScale)
	}
	c, err := experiments.ScalePreset(s.Preset)
	if err != nil {
		return experiments.ScaleConfig{}, fmt.Errorf("config: %w", err)
	}
	if s.Sites > 0 {
		c.Sites = s.Sites
	}
	if s.NumTasks > 0 {
		c.NumTasks = s.NumTasks
	}
	if s.Policy != "" {
		c.Policy = s.Policy
	}
	if s.Seed != 0 {
		c.Seed = s.Seed
	}
	return c, nil
}

// ProbeConfig translates the spec into the probe package's config.
func (s *SeriesSpec) ProbeConfig() probe.Config {
	if s == nil {
		return probe.Config{}
	}
	return probe.Config{Cadence: s.Cadence, MaxPoints: s.MaxPoints, Series: s.Select}
}

// validate rejects malformed series blocks.
func (s *SeriesSpec) validate() error {
	if s == nil {
		return nil
	}
	if s.Cadence < 0 {
		return fmt.Errorf("config: series cadence must be >= 0, got %g", s.Cadence)
	}
	if s.MaxPoints < 0 {
		return fmt.Errorf("config: series max_points must be >= 0, got %d", s.MaxPoints)
	}
	for _, f := range s.Select {
		if !probe.ValidFamily(f) {
			return fmt.Errorf("config: unknown series family %q (want one of %v)", f, probe.Families)
		}
	}
	return nil
}

// defaultJobSpec is the decode base: omitted profile fields keep their
// defaults while Kind stays empty so an empty body cannot silently queue
// a whole campaign.
func defaultJobSpec() JobSpec {
	return JobSpec{Profile: experiments.DefaultProfile()}
}

// Normalize validates the spec and returns a copy with the figure alias
// resolved to its canonical identifier.
func (s JobSpec) Normalize() (JobSpec, error) {
	if err := s.Profile.Validate(); err != nil {
		return JobSpec{}, fmt.Errorf("config: invalid profile: %w", err)
	}
	if s.TimeoutSec < 0 {
		return JobSpec{}, fmt.Errorf("config: timeout_sec must be >= 0, got %g", s.TimeoutSec)
	}
	if s.MaxRetries < 0 {
		return JobSpec{}, fmt.Errorf("config: max_retries must be >= 0, got %d", s.MaxRetries)
	}
	if err := s.Series.validate(); err != nil {
		return JobSpec{}, err
	}
	if err := s.Decisions.validate(); err != nil {
		return JobSpec{}, err
	}
	if s.Kind != JobScale && s.Scale != nil {
		return JobSpec{}, fmt.Errorf("config: %q job must not set scale", s.Kind)
	}
	if s.KeepResults && s.Kind != JobPoints {
		return JobSpec{}, fmt.Errorf("config: keep_results is only valid for %q jobs", JobPoints)
	}
	switch s.Kind {
	case JobFigure:
		if len(s.Points) != 0 {
			return JobSpec{}, fmt.Errorf("config: %q job must not set points", JobFigure)
		}
		canon, err := experiments.CanonicalFigureID(s.Figure)
		if err != nil {
			return JobSpec{}, fmt.Errorf("config: %w", err)
		}
		s.Figure = canon
	case JobPoints:
		if s.Figure != "" {
			return JobSpec{}, fmt.Errorf("config: %q job must not set figure", JobPoints)
		}
		if len(s.Points) == 0 {
			return JobSpec{}, fmt.Errorf("config: %q job needs at least one point", JobPoints)
		}
		for i, pt := range s.Points {
			if pt.NumTasks < 1 {
				return JobSpec{}, fmt.Errorf("config: point %d: NumTasks must be >= 1, got %d", i, pt.NumTasks)
			}
			if _, err := experiments.NewPolicy(pt.Policy); err != nil {
				return JobSpec{}, fmt.Errorf("config: point %d: %w", i, err)
			}
		}
	case JobScale:
		if s.Figure != "" || len(s.Points) != 0 {
			return JobSpec{}, fmt.Errorf("config: %q job must not set figure or points", JobScale)
		}
		c, err := s.Scale.Config()
		if err != nil {
			return JobSpec{}, err
		}
		if err := c.Validate(); err != nil {
			return JobSpec{}, fmt.Errorf("config: %w", err)
		}
	case "":
		return JobSpec{}, fmt.Errorf("config: job kind is required (%q, %q or %q)", JobFigure, JobPoints, JobScale)
	default:
		return JobSpec{}, fmt.Errorf("config: unknown job kind %q (want %q, %q or %q)", s.Kind, JobFigure, JobPoints, JobScale)
	}
	return s, nil
}

// TotalPoints reports how many simulation points the job will run —
// the denominator of the daemon's progress fraction. The spec must have
// been normalized.
func (s JobSpec) TotalPoints() (int, error) {
	switch s.Kind {
	case JobFigure:
		return experiments.PointCount(s.Profile, s.Figure)
	case JobPoints:
		return len(s.Points), nil
	case JobScale:
		return 1, nil
	}
	return 0, fmt.Errorf("config: unknown job kind %q", s.Kind)
}

// MarshalJob renders the job as indented JSON, refusing invalid specs.
func MarshalJob(s JobSpec) ([]byte, error) {
	norm, err := s.Normalize()
	if err != nil {
		return nil, fmt.Errorf("config: refusing to marshal invalid job: %w", err)
	}
	data, err := json.MarshalIndent(norm, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return append(data, '\n'), nil
}

// UnmarshalJob parses JSON into a JobSpec, rejecting unknown fields,
// invalid profiles and malformed job shapes. The input is decoded over
// the default profile, so omitted profile fields keep their defaults;
// the kind must be stated explicitly.
func UnmarshalJob(data []byte) (JobSpec, error) {
	s := defaultJobSpec()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return JobSpec{}, fmt.Errorf("config: %w", err)
	}
	return s.Normalize()
}
