// Package grouping implements the paper's adaptive task-grouping (TG)
// technique (§IV.D): the merge process that folds newly arrived tasks into
// EDF-ordered groups ahead of assignment, the processing-weight indicator
// pw (Eq. 10), the error feedback err_tg (Eq. 9), and the split helper
// that lets idle processors pull tasks out of a waiting group (§IV.D.2).
//
// A task group is the unit of scheduling: it occupies exactly one slot in
// a node's queue and its member tasks fan out over the node's processors.
package grouping

import (
	"fmt"
	"math"

	"rlsched/internal/workload"
)

// Mode selects how the merge process combines priorities (§IV.D.1).
type Mode int

const (
	// ModeMixed merges tasks of any priority into the same group in
	// arrival order. No grouping delay, but pw is a blunter indicator.
	ModeMixed Mode = iota
	// ModeIdentical groups tasks of the same priority together, making
	// pw an accurate priority signal at the cost of slower group closure.
	ModeIdentical
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeMixed:
		return "mixed"
	case ModeIdentical:
		return "identical"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Group is a set of tasks scheduled as one unit (§IV.D).
type Group struct {
	// ID is unique per simulation run.
	ID int
	// Tasks are the members, maintained in EDF order.
	Tasks []*workload.Task
	// Mode records which merge policy built the group.
	Mode Mode
	// Priority is the shared class for identical-priority groups; for
	// mixed groups it is the highest priority present.
	Priority workload.Priority
	// CreatedAt is when the group was closed for assignment.
	CreatedAt float64
	// NodeID is the node the group was assigned to (-1 before placement).
	NodeID int
	// EnqueuedAt is when the group entered the node queue.
	EnqueuedAt float64

	// ErrTG is the error feedback of Eq. 9, recorded at assignment.
	ErrTG float64

	dispatched int
	finished   int
	deadlineOK int
}

// Len returns the number of member tasks.
func (g *Group) Len() int { return len(g.Tasks) }

// PW implements Eq. 10: pw = Σ s_i / Σ d_i over the group, the processing
// weight used to match groups to node capacities. An empty group has zero
// weight.
func (g *Group) PW() float64 {
	return PW(g.Tasks)
}

// PW computes Eq. 10 for any task slice.
func PW(tasks []*workload.Task) float64 {
	dl := workload.TotalDeadline(tasks)
	if dl <= 0 {
		return 0
	}
	return workload.TotalSize(tasks) / dl
}

// ProcFitness computes pw / PC_c: how the group's processing weight sits
// against the capacity of the node it is assigned to (Eq. 9 numerator).
// A fitness of 1 is a perfect match. Panics on non-positive capacity.
func ProcFitness(pw, capacity float64) float64 {
	if capacity <= 0 {
		panic(fmt.Sprintf("grouping: non-positive node capacity %g", capacity))
	}
	return pw / capacity
}

// ErrTG implements Eq. 9: err_tg = |1 − 1/proc_fitness|. A null error
// means the group weight matches the node capacity exactly; undersized
// groups (fitness → 0) are penalised unboundedly, oversized groups
// approach an error of 1. Zero fitness maps to +Inf.
func ErrTG(procFitness float64) float64 {
	if procFitness <= 0 {
		return math.Inf(1)
	}
	return math.Abs(1 - 1/procFitness)
}

// ErrTGFor combines the two steps for a task group on a node capacity.
func ErrTGFor(pw, capacity float64) float64 {
	return ErrTG(ProcFitness(pw, capacity))
}

// NoteDispatched records that one member task started executing.
func (g *Group) NoteDispatched() {
	g.dispatched++
	if g.dispatched > len(g.Tasks) {
		panic(fmt.Sprintf("grouping: group %d dispatched %d of %d tasks", g.ID, g.dispatched, len(g.Tasks)))
	}
}

// NoteFinished records one member completion and whether it met its
// deadline; it returns true when the whole group is complete — the moment
// the reward feedback of Eq. 8 becomes available to the agent.
func (g *Group) NoteFinished(metDeadline bool) bool {
	g.finished++
	if g.finished > len(g.Tasks) {
		panic(fmt.Sprintf("grouping: group %d finished %d of %d tasks", g.ID, g.finished, len(g.Tasks)))
	}
	if metDeadline {
		g.deadlineOK++
	}
	return g.finished == len(g.Tasks)
}

// Dispatched returns how many member tasks have started.
func (g *Group) Dispatched() int { return g.dispatched }

// FullyDispatched reports whether every member has started executing.
func (g *Group) FullyDispatched() bool { return g.dispatched == len(g.Tasks) }

// Complete reports whether every member finished.
func (g *Group) Complete() bool { return g.finished == len(g.Tasks) }

// Reward implements Eq. 8: the number of member tasks that met their
// deadline (only meaningful once Complete).
func (g *Group) Reward() int { return g.deadlineOK }

// NextUndispatched returns the EDF-first task that has not started yet,
// or nil when the group is fully dispatched.
func (g *Group) NextUndispatched() *workload.Task {
	if g.dispatched < len(g.Tasks) {
		return g.Tasks[g.dispatched]
	}
	return nil
}

// SplitOff removes up to k undispatched tasks from the group in EDF order
// and returns them — the split process of §IV.D.2, triggered when
// processors sit at p_min while later groups wait. The removed tasks keep
// their identity; the group shrinks.
func (g *Group) SplitOff(k int) []*workload.Task {
	avail := len(g.Tasks) - g.dispatched
	if k > avail {
		k = avail
	}
	if k <= 0 {
		return nil
	}
	start := g.dispatched
	out := make([]*workload.Task, k)
	copy(out, g.Tasks[start:start+k])
	g.Tasks = append(g.Tasks[:start], g.Tasks[start+k:]...)
	return out
}

// Validate checks group invariants.
func (g *Group) Validate() error {
	if g.finished > g.dispatched {
		return fmt.Errorf("grouping: group %d finished %d > dispatched %d", g.ID, g.finished, g.dispatched)
	}
	if g.deadlineOK > g.finished {
		return fmt.Errorf("grouping: group %d deadlineOK %d > finished %d", g.ID, g.deadlineOK, g.finished)
	}
	for i := g.dispatched + 1; i < len(g.Tasks); i++ {
		if g.Tasks[i-1].AbsoluteDeadline() > g.Tasks[i].AbsoluteDeadline() {
			return fmt.Errorf("grouping: group %d undispatched tail not EDF-ordered at %d", g.ID, i)
		}
	}
	if g.Mode == ModeIdentical {
		for _, t := range g.Tasks {
			if t.Priority != g.Priority {
				return fmt.Errorf("grouping: identical-priority group %d holds %v task %d", g.ID, t.Priority, t.ID)
			}
		}
	}
	return nil
}

// Merger performs the merge process (§IV.D.1): it accumulates arriving
// tasks into open groups and closes a group when it reaches the opnum the
// agent chose. One Merger serves one agent.
type Merger struct {
	mode   Mode
	nextID func() int

	// open groups: a single buffer in mixed mode, one per priority class
	// in identical mode.
	mixed     []*workload.Task
	byPrio    [3][]*workload.Task
	openSince [4]float64 // arrival time of the oldest open task per buffer
}

// NewMerger creates a merger in the given mode. nextID must return unique
// group IDs (the scheduler owns the counter so IDs are global).
func NewMerger(mode Mode, nextID func() int) *Merger {
	return &Merger{mode: mode, nextID: nextID}
}

// Mode returns the merge mode.
func (m *Merger) Mode() Mode { return m.mode }

// SetMode switches the merge policy. Open buffers are retained; tasks
// already buffered close under the new policy's rules (mixed mode drains
// per-priority buffers as its own).
func (m *Merger) SetMode(mode Mode) { m.mode = mode }

// Add merges one arriving task and closes a group when the relevant
// buffer reaches opnum (the optimal group size the agent chose; §IV.D.1
// caps it at the processors of a node — the caller enforces the cap).
// It returns the closed group or nil. now is the arrival time.
func (m *Merger) Add(t *workload.Task, opnum int, now float64) *Group {
	if opnum < 1 {
		opnum = 1
	}
	if m.mode == ModeMixed {
		if len(m.mixed) == 0 {
			m.openSince[3] = now
		}
		m.mixed = append(m.mixed, t)
		if len(m.mixed) >= opnum {
			return m.closeMixed(now)
		}
		return nil
	}
	p := t.Priority
	if len(m.byPrio[p]) == 0 {
		m.openSince[p] = now
	}
	m.byPrio[p] = append(m.byPrio[p], t)
	if len(m.byPrio[p]) >= opnum {
		return m.closePrio(p, now)
	}
	return nil
}

// Pending returns the total number of buffered (not yet grouped) tasks.
func (m *Merger) Pending() int {
	n := len(m.mixed)
	for _, b := range m.byPrio {
		n += len(b)
	}
	return n
}

// OldestOpen returns the arrival time of the oldest buffered task and
// whether any task is buffered — used to close stale groups on a timer so
// tail tasks are not stranded.
func (m *Merger) OldestOpen() (float64, bool) {
	oldest := math.Inf(1)
	found := false
	if len(m.mixed) > 0 {
		oldest = m.openSince[3]
		found = true
	}
	for p, b := range m.byPrio {
		if len(b) > 0 && m.openSince[p] < oldest {
			oldest = m.openSince[p]
			found = true
		}
	}
	if !found {
		return 0, false
	}
	return oldest, true
}

// FlushOldest closes and returns the group containing the oldest buffered
// task regardless of size, or nil if nothing is buffered. The scheduler
// calls this when a group has waited past the close timeout or at the end
// of the arrival stream.
func (m *Merger) FlushOldest(now float64) *Group {
	oldestP, oldestT := -1, math.Inf(1)
	if len(m.mixed) > 0 {
		oldestP, oldestT = 3, m.openSince[3]
	}
	for p, b := range m.byPrio {
		if len(b) > 0 && m.openSince[p] < oldestT {
			oldestP, oldestT = p, m.openSince[p]
		}
	}
	switch {
	case oldestP < 0:
		return nil
	case oldestP == 3:
		return m.closeMixed(now)
	default:
		return m.closePrio(workload.Priority(oldestP), now)
	}
}

// BufferClass indexes the merge buffers for timeout policies: 0..2 are
// the identical-priority buffers (low/medium/high), 3 is the mixed buffer.
const (
	BufferMixed = 3
	numBuffers  = 4
)

// FlushExpired closes every buffer whose oldest task has waited longer
// than its class timeout and returns the closed groups. timeouts is
// indexed by buffer class (priority value, or BufferMixed); urgent classes
// get short timeouts so tight-deadline tasks are not held back to fill a
// group, while patient classes may wait and fill (§IV.D.1: "a task group
// with a small pw is required to be executed as early as possible;
// otherwise, the task group allows some delays").
func (m *Merger) FlushExpired(now float64, timeouts [4]float64) []*Group {
	var out []*Group
	for p := range m.byPrio {
		if len(m.byPrio[p]) > 0 && now-m.openSince[p] >= timeouts[p] {
			out = append(out, m.closePrio(workload.Priority(p), now))
		}
	}
	if len(m.mixed) > 0 && now-m.openSince[BufferMixed] >= timeouts[BufferMixed] {
		out = append(out, m.closeMixed(now))
	}
	return out
}

// FlushAll closes every non-empty buffer and returns the groups.
func (m *Merger) FlushAll(now float64) []*Group {
	var out []*Group
	for g := m.FlushOldest(now); g != nil; g = m.FlushOldest(now) {
		out = append(out, g)
	}
	return out
}

func (m *Merger) closeMixed(now float64) *Group {
	tasks := m.mixed
	m.mixed = nil
	return m.finish(tasks, ModeMixed, now)
}

func (m *Merger) closePrio(p workload.Priority, now float64) *Group {
	tasks := m.byPrio[p]
	m.byPrio[p] = nil
	return m.finish(tasks, ModeIdentical, now)
}

func (m *Merger) finish(tasks []*workload.Task, mode Mode, now float64) *Group {
	workload.SortEDF(tasks)
	g := &Group{
		ID:        m.nextID(),
		Tasks:     tasks,
		Mode:      mode,
		CreatedAt: now,
		NodeID:    -1,
	}
	g.Priority = workload.PriorityLow
	for _, t := range tasks {
		if t.Priority > g.Priority {
			g.Priority = t.Priority
		}
	}
	return g
}
