// Package server turns the simulator into a long-running
// simulation-as-a-service daemon: campaign jobs arrive over a JSON REST
// API, flow through a bounded in-memory queue into a worker pool that
// executes them via the experiments runner, and report progress through
// polling endpoints, Server-Sent Events and a Prometheus-style metrics
// endpoint.
//
// API (all bodies JSON unless noted):
//
//	POST   /v1/jobs             submit a config.JobSpec -> 202 + JobStatus
//	GET    /v1/jobs             list all jobs (submission order)
//	GET    /v1/jobs/{id}        job status snapshot
//	GET    /v1/jobs/{id}/result finished payload (409 until done);
//	                            ?view=full serves the full per-point
//	                            engine results of "keep_results" jobs
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events progress stream (SSE, ends at terminal)
//	GET    /v1/jobs/{id}/trace  retained engine trace (404 unless the job
//	                            was submitted with "trace": true)
//	GET    /v1/jobs/{id}/spans  distributed trace of the campaign
//	                            pipeline (404 unless the job was
//	                            submitted with "spans": true); JSON by
//	                            default, a self-contained HTML waterfall
//	                            via ?format=html
//	GET    /v1/jobs/{id}/series recorded simulation time series (404
//	                            unless the job was submitted with a
//	                            "series" block); JSON by default, CSV
//	                            via ?format=csv or Accept: text/csv
//	GET    /v1/jobs/{id}/series/stream
//	                            live series over SSE: full snapshot,
//	                            then delta frames, reset frames when
//	                            history is rewritten
//	GET    /v1/jobs/{id}/decisions
//	                            recorded scheduling decisions (404
//	                            unless the job was submitted with a
//	                            "decisions" block); JSON by default,
//	                            CSV via ?format=csv, a self-contained
//	                            HTML policy report via ?format=html
//	GET    /v1/jobs/{id}/decisions/stream
//	                            live decision log over SSE: a full
//	                            snapshot whenever the log changes
//	GET    /v1/cluster          cluster role, worker pool, cache stats
//	POST   /v1/cluster/register add a worker to the pool at runtime
//	GET    /healthz             liveness
//	GET    /metrics             Prometheus text exposition; ?format=json
//	                            serves the legacy flat-JSON counter view
//
// Every campaign point a job runs flows through a content-addressed
// result cache keyed by the canonical hash of the point's spec, the
// result-relevant profile fields and the engine version (see
// internal/cache): a repeated point is served from memory or the cache
// spool instead of re-simulated, which is sound because results are
// bit-deterministic functions of their specs. With Options.Cluster the
// daemon joins a cluster: a coordinator leases cache-miss points to
// worker daemons over this same REST API (single-point keep_results
// jobs) and reassembles their full results byte-identically, re-leasing
// points lost to dead workers; a worker serves leases but never fans
// out. See internal/cluster.
//
// Telemetry runs through internal/obs: every route is wrapped in HTTP
// middleware (request counts, latency histograms, in-flight gauge,
// request-id correlation), the job lifecycle records queue-wait and
// run-duration histograms, the engine's per-run counters aggregate into
// engine_* series, and a background sampler publishes Go runtime gauges.
// With Options.Pprof the daemon additionally mounts net/http/pprof under
// /debug/pprof/.
//
// Every job derives its randomness from its spec alone, so a job
// submitted over HTTP returns bit-identical results to the same spec run
// through the CLIs — the daemon adds concurrency and observability, not
// noise. Errors are structured: non-2xx responses carry
// {"error": "..."}.
//
// With Options.SpoolDir set the daemon is crash-safe: every accepted job
// is journaled to disk before the 202 goes out and every settled job is
// journaled with its result, so a restart replays the spool, restores
// finished jobs byte for byte and re-enqueues whatever was queued or
// running when the process died (determinism makes the re-run results
// identical to what the crashed run would have produced).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"rlsched/internal/cache"
	"rlsched/internal/chaos"
	"rlsched/internal/cluster"
	"rlsched/internal/config"
	"rlsched/internal/experiments"
	"rlsched/internal/journal"
	"rlsched/internal/obs"
	"rlsched/internal/obs/span"
	"rlsched/internal/report"
	"rlsched/internal/sched"
)

// ErrTransient marks an infrastructure fault — exhausted file handles, a
// flaky scratch volume — that a retry may clear. Wrap errors with it
// (fmt.Errorf("...: %w", ErrTransient) or errors.Join) to make the
// worker re-run the job under its spec's max_retries budget. Simulation
// errors are deterministic and are never wrapped: retrying a model bug
// reproduces it.
var ErrTransient = errors.New("transient infrastructure fault")

// Options configures a Server.
type Options struct {
	// Jobs is the number of jobs executed concurrently (each job
	// additionally fans its simulation points over its profile's
	// Workers). Default 1: jobs parallelise internally, so one at a time
	// keeps latency predictable.
	Jobs int
	// QueueDepth bounds how many jobs may wait behind the running ones
	// before submissions are rejected with 429. Default 16.
	QueueDepth int
	// SpoolDir, when non-empty, enables the durable job journal: accepted
	// specs and terminal outcomes are fsynced to this directory, and New
	// replays it so jobs interrupted by a crash re-run automatically.
	// Empty keeps the daemon purely in-memory.
	SpoolDir string
	// Logger receives the daemon's structured logs (job lifecycle,
	// per-request debug lines). Use obs.NewLogger to get request-id and
	// job-id correlation from context. Nil discards everything.
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/ on the daemon mux.
	// Off by default: profiling endpoints expose internals and cost
	// memory, so they are opt-in.
	Pprof bool
	// Cache configures the content-addressed result cache every campaign
	// point flows through. The zero value is a memory-only cache with
	// the default capacity; set Dir to persist entries across restarts.
	Cache config.CacheSpec
	// Cluster configures the daemon's cluster role: peers to fan
	// campaign points out to (coordinator), or worker mode (serve leases,
	// never fan out). The zero value is a standalone daemon — which
	// still accepts runtime worker registrations via
	// POST /v1/cluster/register.
	Cluster config.ClusterSpec

	// ClusterTransport, when non-nil, carries every cluster HTTP exchange
	// (health probes and leases). The chaos harness injects latency,
	// drops and partitions here; nil uses the default transport.
	ClusterTransport http.RoundTripper
	// CacheFS / JournalFS, when non-nil, replace the os filesystem under
	// the cache spool and the job journal. The chaos harness injects torn
	// writes, ENOSPC and bit-flips here; nil uses the real filesystem.
	CacheFS   chaos.FS
	JournalFS chaos.FS
}

func (o Options) withDefaults() Options {
	if o.Jobs < 1 {
		o.Jobs = 1
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 16
	}
	return o
}

// Server is the simulation-as-a-service daemon. Create with New, serve
// it as an http.Handler, and stop it with Shutdown.
type Server struct {
	opts Options
	mux  *http.ServeMux

	// baseCtx parents every job context; cancelAll aborts all running
	// work (forced shutdown).
	baseCtx   context.Context
	cancelAll context.CancelFunc

	queue chan *job
	wg    sync.WaitGroup

	// jn is the durable journal, nil when Options.SpoolDir is empty.
	jn *journal.Journal

	// cache is the content-addressed result store every campaign point
	// flows through; never nil.
	cache *cache.Store
	// pool tracks cluster workers; nil in worker mode (a worker serves
	// leases, it never fans out).
	pool *cluster.Pool
	// dispatcher routes campaign points through the cache and, when the
	// pool has alive workers, across them; never nil.
	dispatcher *cluster.Dispatcher
	// aliveWorkers feeds the 429 Retry-After estimate; tests override
	// it. Defaults to the pool's alive count (0 without a pool).
	aliveWorkers func() int

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	seq    int
	closed bool
	// durSum/durN track completed job runtimes (seconds) so a 429's
	// Retry-After can estimate when a queue slot will free up.
	durSum float64
	durN   int

	// reg is the server's metrics registry (rendered by /metrics); m holds
	// the hot-path handles resolved once at construction. log discards
	// when no Options.Logger was given. sampler publishes Go runtime
	// gauges until Shutdown stops it.
	reg     *obs.Registry
	m       metrics
	log     *slog.Logger
	sampler *obs.Sampler

	// keepAlive is the SSE keepalive interval: idle streams emit a
	// comment line this often so proxies and clients can tell a quiet
	// job from a dead connection. Tests shorten it.
	keepAlive time.Duration
	// seriesPoll is how often a series stream re-snapshots its job's
	// recorders between point completions, surfacing samples recorded
	// mid-point. Tests shorten it.
	seriesPoll time.Duration
	// retryBase is the first retry's backoff delay; attempt k waits
	// retryBase << k. Tests shrink it to keep retries instant.
	retryBase time.Duration

	// pointGate, when non-nil, runs after every completed point of every
	// job. Tests set it (before any submission) to hold a job mid-flight
	// so cancellation and queue-pressure paths are exercised without
	// depending on simulation wall-clock.
	pointGate func()
	// faultInject, when non-nil, runs before each execution attempt with
	// the attempt number; a non-nil return is treated as that attempt's
	// error. Tests use it to exercise the retry and panic-isolation
	// paths.
	faultInject func(attempt int) error
}

// traceCap bounds the per-job trace ring: enough to hold the tail of a
// campaign's scheduling decisions without letting a huge job balloon the
// daemon's memory.
const traceCap = 4096

// spanCap bounds the per-job distributed span buffer. The buffer keeps
// its oldest entries (and counts what it drops), so the campaign and
// point structure survives even when a huge fan-out overflows the leaf
// spans — evicting roots would orphan whole subtrees.
const spanCap = 4096

// metrics bundles the server's registry handles, resolved once at
// construction so the hot paths never touch the registry's lookup lock.
type metrics struct {
	queued, running *obs.Gauge
	settled         map[State]*obs.Counter
	retries, points *obs.Counter
	sse             *obs.Gauge
	queueWait       *obs.Histogram
	runSeconds      map[State]*obs.Histogram

	engEvents, engTasks, engGroups *obs.Counter
	engSplits, engBacklogged       *obs.Counter
	engTimelineDrops               *obs.Counter
	engHeapHW                      *obs.Gauge
	memLookups, memHits            *obs.Counter
	memEvictions                   *obs.Counter
	memOccupancy                   *obs.Gauge
}

// terminalStates lists every job outcome, in rendering order.
var terminalStates = []State{StateDone, StateFailed, StateCancelled, StateTimeout}

func newMetrics(reg *obs.Registry) metrics {
	m := metrics{
		queued:        reg.Gauge("jobs_queued", "Jobs waiting in the queue."),
		running:       reg.Gauge("jobs_running", "Jobs currently executing."),
		settled:       make(map[State]*obs.Counter, len(terminalStates)),
		retries:       reg.Counter("job_retries_total", "Transient-fault retries across all jobs."),
		points:        reg.Counter("points_completed_total", "Simulation points completed across all jobs."),
		sse:           reg.Gauge("sse_subscribers", "Open SSE progress streams."),
		queueWait:     reg.Histogram("job_queue_wait_seconds", "Time from job acceptance to execution start.", obs.DefBuckets),
		runSeconds:    make(map[State]*obs.Histogram, len(terminalStates)),
		engEvents:     reg.Counter("engine_events_total", "Simulator events fired across all jobs."),
		engTasks:      reg.Counter("engine_tasks_scheduled_total", "Task executions started across all jobs."),
		engGroups:     reg.Counter("engine_groups_placed_total", "Merge groups placed across all jobs."),
		engSplits:     reg.Counter("engine_splits_total", "Tasks pulled forward by the split process across all jobs."),
		engBacklogged: reg.Counter("engine_backlogged_total", "Group placements deferred for lack of node queue slots."),
		engTimelineDrops: reg.Counter("engine_timeline_drops_total",
			"Trace events an attached timeline tracer could not pair."),
		engHeapHW: reg.Gauge("engine_heap_high_water", "Peak pending-event queue length over any single run."),
		memLookups: reg.Counter("memory_lookups_total",
			"Shared learning-memory similarity queries across all jobs."),
		memHits: reg.Counter("memory_hits_total",
			"Shared learning-memory queries that returned a usable experience."),
		memEvictions: reg.Counter("memory_evictions_total",
			"Shared learning-memory records dropped by per-agent ring overflow."),
		memOccupancy: reg.Gauge("memory_occupancy",
			"Peak shared learning-memory record count over any single run."),
	}
	for _, st := range terminalStates {
		m.settled[st] = reg.Counter("jobs_total", "Jobs settled, by terminal state.", obs.L("state", string(st)))
		m.runSeconds[st] = reg.Histogram("job_run_seconds", "Wall-clock job runtime, by outcome.", obs.DefBuckets, obs.L("outcome", string(st)))
	}
	return m
}

// foldEngine adds one job's aggregated engine counters into the
// server-wide series. Callers hold s.mu, which serialises the
// read-compare-set on the high-water gauge.
func (m *metrics) foldEngine(snap sched.RunStats) {
	m.engEvents.Add(snap.Events)
	m.engTasks.Add(snap.TasksScheduled)
	m.engGroups.Add(snap.GroupsPlaced)
	m.engSplits.Add(snap.Splits)
	m.engBacklogged.Add(snap.Backlogged)
	m.engTimelineDrops.Add(snap.TimelineDrops)
	m.memLookups.Add(snap.MemoryLookups)
	m.memHits.Add(snap.MemoryHits)
	m.memEvictions.Add(snap.MemoryEvictions)
	if occ := float64(snap.MemoryOccupancy); occ > m.memOccupancy.Value() {
		m.memOccupancy.Set(occ)
	}
	if hw := float64(snap.HeapHighWater); hw > m.engHeapHW.Value() {
		m.engHeapHW.Set(hw)
	}
}

// New starts a Server: its worker pool is live immediately. With
// Options.SpoolDir set it first replays the journal — finished jobs come
// back with their results, interrupted ones go straight back into the
// queue — and the error return covers an unreadable or unwritable spool.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if err := opts.Cache.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Cluster.Validate(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	log := opts.Logger
	if log == nil {
		log = obs.NopLogger()
	}
	reg := obs.NewRegistry()
	s := &Server{
		opts:       opts,
		mux:        http.NewServeMux(),
		baseCtx:    ctx,
		cancelAll:  cancel,
		jobs:       make(map[string]*job),
		reg:        reg,
		m:          newMetrics(reg),
		log:        log,
		keepAlive:  15 * time.Second,
		seriesPoll: time.Second,
		retryBase:  time.Second,
	}
	// The result cache is always on: memory-only by default, spooled to
	// disk when Options.Cache.Dir is set. Persistent spool faults degrade
	// it to memory-only rather than failing campaigns.
	store, err := cache.OpenStore(cache.Options{
		Dir: opts.Cache.Dir, MaxMem: opts.Cache.MaxEntries,
		FS: opts.CacheFS, Logger: log,
	})
	if err != nil {
		cancel()
		return nil, err
	}
	s.cache = store

	var pending []*job
	if opts.SpoolDir != "" {
		jn, recs, err := journal.OpenFS(opts.SpoolDir, opts.JournalFS)
		if err != nil {
			cancel()
			return nil, err
		}
		s.jn = jn
		// Forward compatibility: record kinds from a newer daemon are
		// carried through and skipped with a warning, never a startup
		// failure.
		for _, r := range recs {
			if !journal.KnownOp(r.Op) {
				log.Warn("journal: skipping unknown record kind", "op", r.Op, "job", r.ID)
			}
		}
		// Cacherefs of unsettled jobs reseed the cache before the jobs
		// re-enqueue, so a resumed fan-out re-runs only the points that
		// never finished.
		for _, r := range journal.CacheRefs(recs) {
			if err := s.cache.Put(r.Key, r.Result); err != nil {
				log.Warn("journal: cacheref not restored", "job", r.ID, "point", r.Point, "error", err.Error())
			}
		}
		for _, e := range journal.Reduce(recs) {
			// Continue the id sequence where the previous incarnation
			// stopped, so restored and new ids never collide.
			var n int
			if _, err := fmt.Sscanf(e.ID, "job-%d", &n); err == nil && n > s.seq {
				s.seq = n
			}
			j := restoreJob(e)
			s.jobs[j.id] = j
			s.order = append(s.order, j.id)
			if j.state == StateQueued {
				pending = append(pending, j)
			}
		}
	}
	// The queue gets extra headroom for replayed jobs so recovery never
	// competes with fresh submissions for slots.
	s.queue = make(chan *job, opts.QueueDepth+len(pending))
	for _, j := range pending {
		s.queue <- j
	}
	s.m.queued.Add(float64(len(pending)))
	// Queue depth and worker utilisation are cheap to read, so they are
	// refreshed at scrape time rather than on a timer — every scrape sees
	// the current values.
	s.reg.Gauge("queue_depth", "Jobs sitting in the bounded submission queue.")
	s.reg.Gauge("worker_utilization", "Fraction of the worker pool that is busy.")
	s.reg.OnScrape(func(reg *obs.Registry) {
		reg.Gauge("queue_depth", "").Set(float64(len(s.queue)))
		reg.Gauge("worker_utilization", "").Set(s.m.running.Value() / float64(opts.Jobs))
	})

	// Cluster role: a worker serves leases over the ordinary job API and
	// never fans out; anything else keeps a pool, so peers can be named
	// up front (-peers) or register themselves at runtime.
	if !opts.Cluster.Worker {
		var probeClient *http.Client
		if opts.ClusterTransport != nil {
			probeClient = &http.Client{Transport: opts.ClusterTransport}
		}
		s.pool = cluster.NewPool(cluster.PoolOptions{
			Client:           probeClient,
			Heartbeat:        time.Duration(opts.Cluster.HeartbeatSec * float64(time.Second)),
			DeadAfter:        time.Duration(opts.Cluster.DeadAfterSec * float64(time.Second)),
			ProbeTimeout:     time.Duration(opts.Cluster.ProbeTimeoutSec * float64(time.Second)),
			BreakerThreshold: opts.Cluster.BreakerThreshold,
			BreakerCooldown:  time.Duration(opts.Cluster.BreakerCooldownSec * float64(time.Second)),
			Logger:           log,
		})
		for _, peer := range opts.Cluster.Peers {
			if err := s.pool.Add(ctx, peer); err != nil {
				// Not fatal: the heartbeat loop picks the peer up when it
				// comes online.
				log.Warn("cluster peer not reachable yet", "peer", peer, "error", err.Error())
			}
		}
		s.pool.Start()
	}
	s.aliveWorkers = func() int {
		if s.pool == nil {
			return 0
		}
		return s.pool.AliveCount()
	}
	var jfn func(journal.Record)
	if s.jn != nil {
		jfn = func(r journal.Record) { _ = s.jn.Append(r) }
	}
	var leaseClient *http.Client
	if opts.ClusterTransport != nil {
		leaseClient = &http.Client{Transport: opts.ClusterTransport}
	}
	s.dispatcher = cluster.NewDispatcher(cluster.Options{
		Cache: s.cache, Pool: s.pool, Journal: jfn, Registry: s.reg, Logger: log,
		Client:     leaseClient,
		HedgeAfter: time.Duration(opts.Cluster.HedgeAfterSec * float64(time.Second)),
	})

	// Cache telemetry: the store keeps cumulative counters, the registry
	// wants monotonic series — delta-sync at scrape time bridges them.
	// Size gauges are set outright.
	var (
		cacheMu   sync.Mutex
		cacheLast cache.Stats
		cHits     = s.reg.Counter("cache_hits_total", "Content-addressed result cache hits.")
		cMisses   = s.reg.Counter("cache_misses_total", "Content-addressed result cache misses.")
		cPuts     = s.reg.Counter("cache_puts_total", "Entries written to the result cache.")
		cBad      = s.reg.Counter("cache_bad_entries_total", "Corrupt cache entries discarded as misses.")
		cFaults   = s.reg.Counter("cache_disk_faults_total", "Disk I/O failures observed by the cache spool.")
		cMem      = s.reg.Gauge("cache_entries_mem", "Entries in the in-memory cache tier.")
		cDisk     = s.reg.Gauge("cache_entries_disk", "Entries in the on-disk cache spool.")
		cBytes    = s.reg.Gauge("cache_disk_bytes", "Bytes held by the on-disk cache spool.")
		cDegraded = s.reg.Gauge("cache_degraded", "1 when persistent spool faults degraded the cache to memory-only.")
		wAlive    = s.reg.Gauge("cluster_workers", "Cluster pool membership, by liveness.", obs.L("state", "alive"))
		wDead     = s.reg.Gauge("cluster_workers", "Cluster pool membership, by liveness.", obs.L("state", "dead"))
	)
	// breakerValue renders a worker's breaker state as a gauge level:
	// closed scrapes as 0, half-open as 1, open as 2.
	breakerValue := map[string]float64{
		cluster.BreakerClosed.String():   0,
		cluster.BreakerHalfOpen.String(): 1,
		cluster.BreakerOpen.String():     2,
	}
	s.reg.OnScrape(func(*obs.Registry) {
		cs := s.cache.Stats()
		cacheMu.Lock()
		last := cacheLast
		cacheLast = cs
		cacheMu.Unlock()
		cHits.Add(cs.Hits - last.Hits)
		cMisses.Add(cs.Misses - last.Misses)
		cPuts.Add(cs.Puts - last.Puts)
		cBad.Add(cs.BadEntries - last.BadEntries)
		cFaults.Add(cs.DiskFaults - last.DiskFaults)
		cMem.Set(float64(cs.MemEntries))
		cDisk.Set(float64(cs.DiskEntries))
		cBytes.Set(float64(cs.DiskBytes))
		if cs.Degraded {
			cDegraded.Set(1)
		} else {
			cDegraded.Set(0)
		}
		var alive, dead int
		if s.pool != nil {
			for _, w := range s.pool.Snapshot() {
				if w.Alive {
					alive++
				} else {
					dead++
				}
				s.reg.Gauge("cluster_breaker_state",
					"Per-worker circuit breaker: 0 closed, 1 half-open, 2 open.",
					obs.L("worker", w.URL)).Set(breakerValue[w.Breaker])
			}
		}
		wAlive.Set(float64(alive))
		wDead.Set(float64(dead))
	})
	// The runtime sampler publishes go_* gauges; the synchronous first
	// sample means even an immediate scrape sees them.
	s.sampler = obs.StartSampler(s.reg, 0, nil)

	// Every API route goes through the HTTP middleware: per-route request
	// counters and latency histograms, an in-flight gauge and request-id
	// correlation. The mux pattern doubles as the route label, keeping
	// label cardinality bounded no matter what paths clients probe.
	httpm := obs.NewHTTPMetrics(s.reg, s.log)
	handle := func(pattern string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, httpm.Handler(pattern, h))
	}
	handle("POST /v1/jobs", s.handleSubmit)
	handle("GET /v1/jobs", s.handleList)
	handle("GET /v1/jobs/{id}", s.handleStatus)
	handle("GET /v1/jobs/{id}/result", s.handleResult)
	handle("DELETE /v1/jobs/{id}", s.handleCancel)
	handle("GET /v1/jobs/{id}/events", s.handleEvents)
	handle("GET /v1/jobs/{id}/trace", s.handleTrace)
	handle("GET /v1/jobs/{id}/spans", s.handleSpans)
	handle("GET /v1/jobs/{id}/series", s.handleSeries)
	handle("GET /v1/jobs/{id}/series/stream", s.handleSeriesStream)
	handle("GET /v1/jobs/{id}/decisions", s.handleDecisions)
	handle("GET /v1/jobs/{id}/decisions/stream", s.handleDecisionsStream)
	handle("GET /v1/cluster", s.handleClusterStatus)
	handle("POST /v1/cluster/register", s.handleClusterRegister)
	handle("GET /healthz", s.handleHealthz)
	handle("GET /metrics", s.handleMetrics)
	if opts.Pprof {
		// Mounted raw: profile downloads should not skew the latency
		// histograms they are used to investigate.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.wg.Add(opts.Jobs)
	for i := 0; i < opts.Jobs; i++ {
		go s.worker()
	}
	return s, nil
}

// restoreJob rebuilds one job from its journal entry. An entry without a
// terminal state was queued or running at crash time and comes back as
// queued; the caller re-enqueues it.
func restoreJob(e journal.Entry) *job {
	spec, err := config.UnmarshalJob(e.Spec)
	if err != nil {
		// The journaled spec no longer parses (schema drift across an
		// upgrade): surface the job as failed rather than dropping it.
		j := newJob(e.ID, config.JobSpec{}, 0)
		j.state = StateFailed
		j.err = fmt.Sprintf("restoring journaled spec: %v", err)
		close(j.doneCh)
		return j
	}
	total, _ := spec.TotalPoints()
	j := newJob(e.ID, spec, total)
	if e.State == "" {
		return j
	}
	j.state = State(e.State)
	j.err = e.Error
	if len(e.Result) > 0 {
		var res JobResult
		if err := json.Unmarshal(e.Result, &res); err == nil {
			j.figures, j.points = res.Figures, res.Points
		}
	}
	if j.state == StateDone {
		j.done.Store(int64(total))
	}
	close(j.doneCh)
	return j
}

// journalAccepted persists a job's acceptance; it must succeed before
// the 202 goes out, so an acknowledged job is never lost to a crash.
func (s *Server) journalAccepted(j *job) error {
	if s.jn == nil {
		return nil
	}
	spec, err := json.Marshal(j.spec)
	if err != nil {
		return err
	}
	return s.jn.Append(journal.Record{Op: journal.OpAccepted, ID: j.id, Spec: spec})
}

// journalTerminal persists a job's outcome. Best-effort: if the write
// fails the in-memory record still serves clients, and the worst case
// after a restart is a deterministic re-run of a finished job.
func (s *Server) journalTerminal(j *job, state State, errMsg string, result json.RawMessage) {
	if s.jn == nil {
		return
	}
	_ = s.jn.Append(journal.Record{
		Op: journal.OpTerminal, ID: j.id, State: string(state), Error: errMsg, Result: result,
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown stops the server: no new submissions are accepted and the
// workers drain the queue. If ctx expires before the drain completes,
// every remaining job is cancelled; Shutdown always waits for the
// workers to exit before returning.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelAll()
		<-drained
	}
	s.cancelAll() // release the base context in the graceful path too
	if s.pool != nil {
		s.pool.Stop()
	}
	s.sampler.Stop()
	if s.jn != nil {
		_ = s.jn.Close()
	}
	return err
}

// Registry exposes the server's metrics registry so the embedding
// process can add its own series — rlsimd registers build_info on it.
func (s *Server) Registry() *obs.Registry { return s.reg }

// writeJSON writes v as a JSON response with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes the structured error body every non-2xx response
// carries.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// lookup resolves the {id} path segment; on miss it writes a 404 and
// returns nil.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
	}
	return j
}

// maxJobBody bounds a submitted job spec; profiles are a few KB, so 1
// MiB is generous without letting a client balloon the daemon.
const maxJobBody = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxJobBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	spec, err := config.UnmarshalJob(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	total, err := spec.TotalPoints()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	s.seq++
	j := newJob(fmt.Sprintf("job-%06d", s.seq), spec, total)
	j.reqID = obs.RequestID(r.Context())
	if j.spans != nil {
		// A coordinator leasing this job names its own lease span in a
		// traceparent header; adopting it stitches this daemon's spans
		// into the caller's trace. Adoption must land before the queue
		// send — a worker may pop the job immediately.
		if tp, err := span.ParseTraceparent(r.Header.Get(span.Header)); err == nil {
			j.adoptTraceparent(tp)
		}
	}
	select {
	case s.queue <- j:
	default:
		s.seq-- // the id was never exposed
		sec := s.retryAfterLocked()
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(sec))
		writeError(w, http.StatusTooManyRequests,
			"job queue full (%d queued); retry in %ds", s.opts.QueueDepth, sec)
		return
	}
	// Journal the acceptance before acknowledging it (the append fsyncs),
	// so a 202 means the job survives any crash. Holding s.mu keeps the
	// journal's acceptance order identical to the id order.
	if err := s.journalAccepted(j); err != nil {
		// The job already holds a queue slot; settle it terminally so the
		// worker skips it on pop. The id is burned, not reused: a torn
		// journal line may still carry it.
		j.state = StateFailed
		j.err = err.Error()
		close(j.doneCh)
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, "journaling job: %v", err)
		return
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	s.m.queued.Add(1)
	s.log.InfoContext(obs.WithJobID(r.Context(), j.id), "job accepted",
		"kind", spec.Kind, "figure", spec.Figure, "points_total", total,
		"trace", spec.Trace, "spans", spec.Spans)
	writeJSON(w, http.StatusAccepted, j.status())
}

// retryAfterLocked estimates (in whole seconds, at least 1) how long a
// bounced client should wait for a queue slot: the observed mean job
// runtime times the jobs ahead of it, spread over the daemon's real
// drain capacity. Two corrections keep the estimate honest under the
// cache and the cluster: points served from the cache cost nothing, so
// the mean is discounted by the observed miss rate (floored at 5% — a
// hot cache never promises instant slots), and a coordinator drains its
// queue with every alive worker's help, not just its own job slots.
// Callers hold s.mu.
func (s *Server) retryAfterLocked() int {
	mean := 1.0
	if s.durN > 0 {
		mean = s.durSum / float64(s.durN)
	}
	miss := 1.0
	if cs := s.cache.Stats(); cs.Lookups() > 0 {
		miss = 1 - cs.HitRate()
		if miss < 0.05 {
			miss = 0.05
		}
	}
	return retryAfterEstimate(mean, miss, len(s.queue), s.opts.Jobs, s.aliveWorkers())
}

// retryAfterEstimate is the Retry-After arithmetic, split out so the
// policy is testable without staging a full queue: expected work per
// queued job (mean runtime discounted by the cache miss rate) divided
// by drain capacity (local job slots plus every alive worker's worth).
func retryAfterEstimate(mean, missRate float64, queued, slots, workers int) int {
	capacity := float64(slots) * (1 + float64(workers))
	sec := int(math.Ceil(mean * missRate * float64(queued) / capacity))
	if sec < 1 {
		sec = 1
	}
	return sec
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	state := j.state
	res := JobResult{ID: j.id, Figures: j.figures, Points: j.points}
	full := j.results
	j.mu.Unlock()
	if state != StateDone {
		writeError(w, http.StatusConflict, "job %s is %s, not done", j.id, state)
		return
	}
	if r.URL.Query().Get("view") == "full" {
		// Full results exist only for keep_results jobs and only in the
		// incarnation that ran them (they are not journaled — a restored
		// job serves the summary). A coordinator hitting this 404 simply
		// re-leases the point.
		if full == nil {
			writeError(w, http.StatusNotFound,
				"job %s retained no full results (submit with \"keep_results\": true)", j.id)
			return
		}
		writeJSON(w, http.StatusOK, FullResult{ID: j.id, Results: full})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleClusterStatus reports the daemon's cluster role, its worker
// pool and its cache counters.
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	st := ClusterStatus{Role: "standalone", Cache: s.cache.Stats()}
	if s.opts.Cluster.Worker {
		st.Role = "worker"
	} else if s.pool != nil {
		st.Workers = s.pool.Snapshot()
		if len(st.Workers) > 0 {
			st.Role = "coordinator"
		}
	}
	writeJSON(w, http.StatusOK, st)
}

// handleClusterRegister adds a worker to the pool at runtime. The probe
// is synchronous, so a 200 with "alive": true means the worker can take
// leases immediately.
func (s *Server) handleClusterRegister(w http.ResponseWriter, r *http.Request) {
	if s.pool == nil {
		writeError(w, http.StatusConflict, "this daemon is a cluster worker; it does not take peers")
		return
	}
	var body struct {
		URL string `json:"url"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&body); err != nil || body.URL == "" {
		writeError(w, http.StatusBadRequest, "body must be {\"url\": \"http://worker:port\"}")
		return
	}
	if _, err := cluster.NormalizeURL(body.URL); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	err := s.pool.Add(r.Context(), body.URL)
	s.log.InfoContext(r.Context(), "cluster worker registered", "worker", body.URL, "alive", err == nil)
	writeJSON(w, http.StatusOK, map[string]any{"url": body.URL, "alive": err == nil})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		state := j.state
		j.mu.Unlock()
		writeError(w, http.StatusConflict, "job %s already %s", j.id, state)
		return
	case j.state == StateQueued:
		// Flip to cancelled right away; the worker skips it on pop.
		j.cancelled = true
		j.state = StateCancelled
		close(j.doneCh)
		j.mu.Unlock()
		s.m.queued.Add(-1)
		s.m.settled[StateCancelled].Inc()
		// A client's cancellation is a decision, not an accident: journal
		// it so the job stays cancelled across restarts.
		s.journalTerminal(j, StateCancelled, "", nil)
	default: // running
		j.cancelled = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel() // the worker observes ctx and finishes as cancelled
		}
	}
	j.notify()
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	s.m.sse.Add(1)
	defer s.m.sse.Add(-1)
	tick := j.watch()
	defer j.unwatch(tick)
	// The keepalive comment keeps idle proxies from reaping the stream
	// during a long quiet stretch and lets clients distinguish a slow job
	// from a dead connection.
	ka := time.NewTicker(s.keepAlive)
	defer ka.Stop()
	emit := func(event string) {
		data, _ := json.Marshal(j.status())
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		fl.Flush()
	}
	emit("progress")
	for {
		select {
		case <-r.Context().Done():
			// Client went away: tear the stream down immediately. The job
			// itself is unaffected.
			return
		case <-j.doneCh:
			emit("done")
			return
		case <-tick:
			emit("progress")
		case <-ka.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics serves the registry in Prometheus text exposition
// format. The pre-registry flat-JSON counter view survives behind
// ?format=json for scripts that scraped the old endpoint; json.Marshal
// sorts map keys, so both formats render in stable order.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, map[string]int64{
			"jobs_queued":      int64(s.m.queued.Value()),
			"jobs_running":     int64(s.m.running.Value()),
			"jobs_done":        int64(s.m.settled[StateDone].Value()),
			"jobs_failed":      int64(s.m.settled[StateFailed].Value()),
			"jobs_cancelled":   int64(s.m.settled[StateCancelled].Value()),
			"jobs_timeout":     int64(s.m.settled[StateTimeout].Value()),
			"job_retries":      int64(s.m.retries.Value()),
			"points_completed": int64(s.m.points.Value()),
		})
		return
	}
	w.Header().Set("Content-Type", obs.ContentType)
	_ = s.reg.WritePrometheus(w)
}

// handleTrace serves a traced job's retained engine events. Jobs
// submitted without "trace": true have no ring — they paid no tracing
// cost — so the endpoint 404s for them.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	if j.ring == nil {
		writeError(w, http.StatusNotFound, "job %s was not submitted with trace enabled", j.id)
		return
	}
	evs := j.ring.Events()
	out := TraceResponse{
		ID:       j.id,
		Total:    j.ring.Total(),
		Retained: len(evs),
		Events:   make([]TraceEvent, len(evs)),
	}
	for i, e := range evs {
		fields := make(map[string]any, len(e.Fields))
		for _, f := range e.Fields {
			fields[f.Key] = f.Value
		}
		out.Events[i] = TraceEvent{At: e.At, Level: e.Level.String(), Kind: e.Kind, Fields: fields}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSpans serves a span-traced job's distributed trace: every
// recorded span — coordinator-side campaign structure, lease attempts,
// imported worker timelines — in a stable order, with the drop count.
// Jobs submitted without "spans": true have no trace (they paid no span
// cost), so the endpoint 404s for them. ?format=html renders the
// self-contained waterfall view instead of JSON.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	if j.spans == nil {
		writeError(w, http.StatusNotFound, "job %s was not submitted with spans enabled", j.id)
		return
	}
	recs := j.spans.Snapshot()
	if r.URL.Query().Get("format") == "html" {
		rep := report.NewHTMLReport("Trace " + j.id)
		rep.AddKeyValues("Trace", [][2]string{
			{"Job", j.id},
			{"Trace ID", j.spans.TraceID()},
			{"Spans", strconv.Itoa(len(recs))},
			{"Dropped", strconv.FormatUint(j.spans.Dropped(), 10)},
		})
		rep.AddWaterfall("Campaign waterfall", recs)
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_ = rep.Render(w)
		return
	}
	writeJSON(w, http.StatusOK, SpansResponse{
		ID:       j.id,
		TraceID:  j.spans.TraceID(),
		Retained: len(recs),
		Dropped:  j.spans.Dropped(),
		Spans:    recs,
	})
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.safeRun(j)
	}
}

// safeRun isolates one job execution: a panic that escapes the
// simulation layer's own recovery (a bug in the server glue itself)
// fails only this job — stack in the job record — and the worker lives
// on to serve the next one.
func (s *Server) safeRun(j *job) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		stack := string(debug.Stack())
		j.mu.Lock()
		if j.state.Terminal() {
			// The panic struck after the job settled; its record and the
			// metrics are already consistent.
			j.mu.Unlock()
			return
		}
		wasRunning := j.state == StateRunning
		j.cancel = nil
		j.state = StateFailed
		j.err = fmt.Sprintf("panic: %v\n%s", r, stack)
		errMsg := j.err
		close(j.doneCh)
		j.mu.Unlock()
		if wasRunning {
			s.m.running.Add(-1)
		} else {
			s.m.queued.Add(-1)
		}
		s.m.settled[StateFailed].Inc()
		s.log.ErrorContext(obs.WithJobID(context.Background(), j.id), "job panicked", "panic", fmt.Sprint(r))
		s.journalTerminal(j, StateFailed, errMsg, nil)
		j.notify()
	}()
	s.runJob(j)
}

// runJob executes one job end to end — attempts, timeout, retries — and
// settles its terminal state.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.state.Terminal() {
		// Cancelled while queued; the cancel handler already settled it.
		j.mu.Unlock()
		return
	}
	if j.cancelled || s.baseCtx.Err() != nil {
		// Cancelled or force-shutdown before starting.
		j.state = StateCancelled
		wasClient := j.cancelled
		close(j.doneCh)
		j.mu.Unlock()
		s.m.queued.Add(-1)
		s.m.settled[StateCancelled].Inc()
		if wasClient {
			s.journalTerminal(j, StateCancelled, "", nil)
		}
		j.notify()
		return
	}
	runCtx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	// The timeout wraps all attempts: a job's deadline is a budget for
	// finishing, not a per-try allowance.
	jobCtx := runCtx
	if j.spec.TimeoutSec > 0 {
		var tcancel context.CancelFunc
		jobCtx, tcancel = context.WithTimeout(runCtx, time.Duration(j.spec.TimeoutSec*float64(time.Second)))
		defer tcancel()
	}
	j.cancel = cancel
	j.state = StateRunning
	j.mu.Unlock()
	s.m.queued.Add(-1)
	s.m.running.Add(1)
	s.m.queueWait.Observe(time.Since(j.acceptedAt).Seconds())
	jctx := obs.WithJobID(context.Background(), j.id)
	s.log.InfoContext(jctx, "job started",
		"kind", j.spec.Kind, "queue_wait_sec", time.Since(j.acceptedAt).Seconds())
	j.notify()

	start := time.Now()
	// A span-traced job records its whole run under one root span; the
	// root's parent is zero for locally submitted jobs and the remote
	// lease span for jobs a coordinator leased here, which is what
	// stitches the two daemons' timelines into one trace. Span durations
	// also fold into the span_duration_seconds histogram by span name.
	var jobSpan *span.Span
	if j.spans != nil {
		j.spans.OnEnd(func(name string, seconds float64) {
			s.reg.Histogram("span_duration_seconds",
				"Durations of campaign pipeline spans by span name.",
				obs.DefBuckets, obs.L("span", name)).Observe(seconds)
		})
		jobSpan = j.spans.Start(j.spanParent, "job.run")
		jobSpan.SetStr("kind", j.spec.Kind)
		if j.spec.Figure != "" {
			jobSpan.SetStr("figure", j.spec.Figure)
		}
	}
	prof := j.spec.Profile
	prof.Progress = func() {
		j.done.Add(1)
		s.m.points.Inc()
		j.notify()
		if s.pointGate != nil {
			s.pointGate()
		}
	}
	// Campaign telemetry flows into the server's registry: point
	// durations land in point_run_seconds and the engine folds each run's
	// counters into the job-level aggregate snapshotted below.
	prof.Metrics = s.reg
	prof.Logger = s.log
	engStats := new(sched.Stats)
	prof.Engine.Stats = engStats
	// Campaign points route through the dispatcher: answered from the
	// content-addressed cache when possible, leased to cluster workers
	// when a pool has capacity, run locally otherwise. The runner
	// bypasses the hook on its own whenever the job carries in-process
	// instrumentation (trace ring, series probes) that only a local run
	// can feed.
	prof.RunPoints = s.dispatcher.Runner(cluster.JobMeta{
		ID: j.id, RequestID: j.reqID, Trace: j.spans, Parent: jobSpan.ID(),
	})
	if j.ring != nil {
		prof.Engine.Tracer = j.ring
	}
	if j.series != nil {
		prof.ProbeFor = j.series.probeFor(j.spec.Series.ProbeConfig())
	}
	if j.decisions != nil {
		prof.AuditFor = j.decisions.auditFor(j.spec.Decisions.AuditConfig())
	}
	if j.spans != nil && (j.ring != nil || j.series != nil || j.decisions != nil) {
		// In-process instrumentation forces the campaign to run locally
		// (RunManyCtx bypasses RunPoints), so the dispatcher never sees
		// these points: hang each engine run directly under job.run.
		prof.PointSpan = func(i int, spec experiments.RunSpec) func(error) {
			sp := j.spans.Start(jobSpan.ID(), "engine.run")
			sp.SetInt("index", int64(i))
			sp.SetStr("policy", string(spec.Policy))
			return func(err error) {
				if err != nil {
					sp.SetStr("error", err.Error())
				}
				sp.End()
			}
		}
	}

	var (
		figures []experiments.Figure
		points  []PointResult
		full    []sched.Result
		err     error
	)
	for attempt := 0; ; attempt++ {
		j.mu.Lock()
		j.attempts = attempt + 1
		j.mu.Unlock()
		// A retry re-runs every point, so the progress counter restarts —
		// and so do the recorded series, or stale recorders from the
		// failed attempt would double up in responses.
		j.done.Store(0)
		if j.series != nil && attempt > 0 {
			j.series.reset()
		}
		if j.decisions != nil && attempt > 0 {
			j.decisions.reset()
		}
		figures, points, full, err = s.execute(jobCtx, j, prof, attempt)
		if err == nil || !errors.Is(err, ErrTransient) ||
			attempt >= j.spec.MaxRetries || jobCtx.Err() != nil {
			break
		}
		s.m.retries.Inc()
		s.log.WarnContext(jctx, "job retrying after transient fault", "attempt", attempt+1, "error", err.Error())
		backoff := time.NewTimer(s.retryBase << attempt)
		select {
		case <-jobCtx.Done():
			backoff.Stop()
		case <-backoff.C:
		}
	}
	elapsed := time.Since(start).Seconds()

	j.mu.Lock()
	j.cancel = nil
	var termResult json.RawMessage
	journalIt := true
	switch {
	case err == nil:
		j.state = StateDone
		j.figures, j.points, j.results = figures, points, full
		termResult, _ = json.Marshal(JobResult{ID: j.id, Figures: figures, Points: points})
	case jobCtx.Err() == context.DeadlineExceeded && runCtx.Err() == nil:
		j.state = StateTimeout
		j.err = fmt.Sprintf("timed out after %gs", j.spec.TimeoutSec)
	case j.cancelled:
		j.state = StateCancelled
	case errors.Is(err, context.Canceled) || runCtx.Err() != nil:
		// Shutdown took the job down, not a client: leave no terminal
		// record so a restart picks the job back up, exactly as after a
		// crash.
		j.state = StateCancelled
		journalIt = false
	default:
		j.state = StateFailed
		j.err = err.Error()
	}
	snap := engStats.Snapshot()
	j.engine = &snap
	state, errMsg, attempts := j.state, j.err, j.attempts
	close(j.doneCh)
	j.mu.Unlock()
	if jobSpan != nil {
		jobSpan.SetStr("state", string(state))
		jobSpan.End()
	}
	s.m.running.Add(-1)
	s.m.settled[state].Inc()
	s.m.runSeconds[state].Observe(elapsed)
	s.log.InfoContext(jctx, "job settled",
		"state", string(state), "seconds", elapsed, "attempts", attempts, "error", errMsg)
	s.mu.Lock()
	s.durSum += elapsed
	s.durN++
	s.m.foldEngine(snap)
	s.mu.Unlock()
	if j.decisions != nil {
		s.foldDecisionMetrics(j.decisions)
	}
	if journalIt {
		s.journalTerminal(j, state, errMsg, termResult)
	}
	j.notify()
}

// execute runs one attempt of the job's workload under ctx. The third
// return is the full per-point engine results, kept only for JobPoints
// jobs that asked for them (keep_results) — the cluster lease shape.
func (s *Server) execute(ctx context.Context, j *job, prof experiments.Profile, attempt int) ([]experiments.Figure, []PointResult, []sched.Result, error) {
	if s.faultInject != nil {
		if err := s.faultInject(attempt); err != nil {
			return nil, nil, nil, err
		}
	}
	switch j.spec.Kind {
	case config.JobFigure:
		figures, err := runFigureJob(ctx, prof, j.spec.Figure)
		return figures, nil, nil, err
	case config.JobPoints:
		results, err := experiments.RunManyCtx(ctx, prof, j.spec.Points)
		if err != nil {
			return nil, nil, nil, err
		}
		points := make([]PointResult, len(results))
		for i, res := range results {
			points[i] = summarizePoint(j.spec.Points[i], res)
		}
		var full []sched.Result
		if j.spec.KeepResults {
			// The Collector (per-task records) never crosses the wire:
			// no summary or figure reads it, and it can dwarf the result
			// scalars.
			full = make([]sched.Result, len(results))
			copy(full, results)
			for i := range full {
				full[i].Collector = nil
			}
		}
		return nil, points, full, nil
	case config.JobScale:
		// One scenario, one point. Like any single point it is not
		// cancellable mid-run; the deadline is checked before starting.
		if err := ctx.Err(); err != nil {
			return nil, nil, nil, err
		}
		c, err := j.spec.Scale.Config()
		if err != nil {
			return nil, nil, nil, err
		}
		// Engine telemetry flows exactly as in profile-driven jobs: run
		// counters into the settled status and /metrics, events into the
		// trace ring when the job asked for one.
		c.Stats = prof.Engine.Stats
		c.Tracer = prof.Engine.Tracer
		res, err := experiments.RunScale(c)
		if err != nil {
			return nil, nil, nil, err
		}
		if prof.Progress != nil {
			prof.Progress()
		}
		spec := experiments.RunSpec{Policy: c.Policy, NumTasks: c.NumTasks, Seed: c.Seed}
		return nil, []PointResult{summarizePoint(spec, res)}, nil, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown job kind %q", j.spec.Kind)
	}
}

// runFigureJob regenerates one figure (or the whole paper set) under the
// job's profile — the exact code path the CLIs use, so the daemon's
// results are bit-identical to theirs.
func runFigureJob(ctx context.Context, p experiments.Profile, id string) ([]experiments.Figure, error) {
	if id == experiments.FigureIDAll {
		return experiments.AllCtx(ctx, p)
	}
	if isExtensionFigure(id) {
		fig, err := experiments.ExtensionFigureByIDCtx(ctx, p, id)
		if err != nil {
			return nil, err
		}
		return []experiments.Figure{fig}, nil
	}
	fig, err := experiments.FigureByIDCtx(ctx, p, id)
	if err != nil {
		return nil, err
	}
	return []experiments.Figure{fig}, nil
}

func isExtensionFigure(id string) bool {
	for _, e := range experiments.ExtensionFigureIDs {
		if id == e {
			return true
		}
	}
	return false
}
