package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "flag provided but not defined") {
		t.Fatalf("stderr: %q", errOut.String())
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-fig", "99"}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unknown") {
		t.Fatalf("stderr: %q", errOut.String())
	}
}

func TestRunBadConfigPath(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-config", filepath.Join(t.TempDir(), "missing.json")}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
}

// TestRunTinyFigure regenerates figure 10 under a deliberately tiny
// config file: the full CLI path from flags through config.Load to the
// figure sweep and table report.
func TestRunTinyFigure(t *testing.T) {
	cfgPath := filepath.Join(t.TempDir(), "tiny.json")
	cfg := `{"profile": {"Replications": 1, "ObservationPeriod": 300, "LightTasks": 30, "HeavyTasks": 50, "Workers": 2}}`
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-fig", "10", "-config", cfgPath, "-csv"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr=%q", code, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"figure10", "regenerated in"} {
		if !strings.Contains(s, want) {
			t.Fatalf("stdout missing %q:\n%s", want, s)
		}
	}
}

func TestVersionFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-version"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr=%q", code, errOut.String())
	}
	if !strings.HasPrefix(out.String(), "experiments ") || !strings.Contains(out.String(), "go1") {
		t.Fatalf("version output: %q", out.String())
	}
}

// TestRunHTMLReport regenerates one small figure into the single-file
// HTML report and checks the output is self-contained.
func TestRunHTMLReport(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "tiny.json")
	cfg := `{"profile": {"Replications": 1, "ObservationPeriod": 300, "LightTasks": 30, "HeavyTasks": 50, "Workers": 2}}`
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	htmlPath := filepath.Join(dir, "figs.html")
	var out, errOut bytes.Buffer
	if code := run([]string{"-fig", "10", "-config", cfgPath, "-report", htmlPath}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr=%q", code, errOut.String())
	}
	data, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{"<svg", "<style>", "FIGURE10"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	for _, banned := range []string{"<script", "http://", "https://", "src="} {
		if strings.Contains(s, banned) {
			t.Fatalf("report contains %q — not self-contained", banned)
		}
	}
}
