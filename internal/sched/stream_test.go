package sched

import (
	"errors"
	"math"
	"testing"

	"rlsched/internal/platform"
	"rlsched/internal/rng"
	"rlsched/internal/workload"
)

// streamScenario builds one deterministic platform + task slice; callers
// construct engines over it in different modes and compare results.
func streamScenario(t *testing.T, n int, seed uint64) (*platform.Platform, []*workload.Task, *rng.Stream) {
	t.Helper()
	r := rng.NewStream(seed, "stream")
	pcfg := platform.DefaultGenConfig()
	pcfg.Sites = 3
	pcfg.MinNodesPerSite, pcfg.MaxNodesPerSite = 2, 3
	pl := platform.MustGenerate(pcfg, r.Split("platform"))
	wcfg := workload.DefaultGenConfig()
	wcfg.NumTasks = n
	wcfg.MeanInterArrival = 1
	wcfg.SlowestSpeedMIPS = pl.SlowestSpeed()
	tasks := workload.MustGenerate(wcfg, r.Split("workload"))
	return pl, tasks, r
}

// TestNewFromSourceMatchesNew: feeding the same tasks through a streaming
// Source must be bit-for-bit equivalent to handing over the full slice.
func TestNewFromSourceMatchesNew(t *testing.T) {
	plA, tasksA, rA := streamScenario(t, 400, 7)
	engA := MustNew(DefaultConfig(), plA, tasksA, NewGreedy(), rA.Split("engine"))
	a := engA.MustRun()

	plB, tasksB, rB := streamScenario(t, 400, 7)
	engB, err := NewFromSource(DefaultConfig(), plB, workload.FromSlice(tasksB), NewGreedy(), rB.Split("engine"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := engB.Run()
	if err != nil {
		t.Fatal(err)
	}

	if a.Completed != b.Completed || a.Submitted != b.Submitted || a.DeadlineHits != b.DeadlineHits {
		t.Fatalf("counts differ: %+v vs %+v", a, b)
	}
	exact := [][2]float64{
		{a.AveRT, b.AveRT}, {a.MeanWait, b.MeanWait}, {a.ECS, b.ECS},
		{a.SuccessRate, b.SuccessRate}, {a.MeanUtilization, b.MeanUtilization},
		{a.EndTime, b.EndTime}, {a.MeanGroupSize, b.MeanGroupSize},
		{a.MeanGroupLVal, b.MeanGroupLVal},
	}
	for i, pair := range exact {
		if pair[0] != pair[1] {
			t.Fatalf("metric %d differs: %g vs %g", i, pair[0], pair[1])
		}
	}
	if len(a.UtilWindows) != len(b.UtilWindows) {
		t.Fatalf("UtilWindows length %d vs %d", len(a.UtilWindows), len(b.UtilWindows))
	}
	for i := range a.UtilWindows {
		if a.UtilWindows[i] != b.UtilWindows[i] {
			t.Fatalf("UtilWindows[%d] differs: %g vs %g", i, a.UtilWindows[i], b.UtilWindows[i])
		}
	}
}

// TestLowMemoryAgreesWithRetained: LowMemory aggregates on the fly; the
// schedule itself is untouched, so counters and means must match exactly
// and the utilisation series to float-summation tolerance.
func TestLowMemoryAgreesWithRetained(t *testing.T) {
	plA, tasksA, rA := streamScenario(t, 400, 11)
	a := MustNew(DefaultConfig(), plA, tasksA, NewGreedy(), rA.Split("engine")).MustRun()

	plB, tasksB, rB := streamScenario(t, 400, 11)
	cfg := DefaultConfig()
	cfg.LowMemory = true
	b := MustNew(cfg, plB, tasksB, NewGreedy(), rB.Split("engine")).MustRun()

	if !b.Collector.Streaming() {
		t.Fatal("LowMemory run did not use a streaming collector")
	}
	if a.Completed != b.Completed || a.Submitted != b.Submitted || a.DeadlineHits != b.DeadlineHits {
		t.Fatalf("counts differ: retained %d/%d/%d, streaming %d/%d/%d",
			a.Completed, a.Submitted, a.DeadlineHits, b.Completed, b.Submitted, b.DeadlineHits)
	}
	exact := map[string][2]float64{
		"AveRT":         {a.AveRT, b.AveRT},
		"MeanWait":      {a.MeanWait, b.MeanWait},
		"SuccessRate":   {a.SuccessRate, b.SuccessRate},
		"EndTime":       {a.EndTime, b.EndTime},
		"MeanGroupSize": {a.MeanGroupSize, b.MeanGroupSize},
		"MeanGroupLVal": {a.MeanGroupLVal, b.MeanGroupLVal},
	}
	for name, pair := range exact {
		if pair[0] != pair[1] {
			t.Errorf("%s differs: retained %g, streaming %g", name, pair[0], pair[1])
		}
	}
	// The lite accountant folds busy-time integrals incrementally and sums
	// platform energy in a different order than the per-node snapshots of
	// the retained path. Same quantities, different float summation order.
	if d := math.Abs(a.ECS - b.ECS); d > 1e-9*math.Abs(a.ECS) {
		t.Errorf("ECS differs: retained %g, streaming %g", a.ECS, b.ECS)
	}
	if len(a.UtilWindows) != len(b.UtilWindows) {
		t.Fatalf("UtilWindows length %d vs %d", len(a.UtilWindows), len(b.UtilWindows))
	}
	for i := range a.UtilWindows {
		if d := math.Abs(a.UtilWindows[i] - b.UtilWindows[i]); d > 1e-6*(1+math.Abs(a.UtilWindows[i])) {
			t.Errorf("UtilWindows[%d]: retained %g, streaming %g", i, a.UtilWindows[i], b.UtilWindows[i])
		}
	}
	// RTPercentile is histogram-approximate in streaming mode (~5%
	// relative bucket width; allow slack for rank-vs-bucket effects).
	pa, pb := a.Collector.RTPercentile(95), b.Collector.RTPercentile(95)
	if pa > 0 && math.Abs(pa-pb)/pa > 0.10 {
		t.Errorf("RTPercentile(95): retained %g, streaming %g", pa, pb)
	}
	if len(b.Collector.Tasks()) != 0 || len(b.Collector.Groups()) != 0 {
		t.Errorf("streaming collector retained %d tasks / %d groups",
			len(b.Collector.Tasks()), len(b.Collector.Groups()))
	}
	if err := b.Collector.Validate(); err != nil {
		t.Errorf("streaming collector invalid: %v", err)
	}
}

func TestEmptySourceError(t *testing.T) {
	pl, _, r := streamScenario(t, 10, 3)
	eng, err := NewFromSource(DefaultConfig(), pl, workload.FromSlice(nil), NewGreedy(), r.Split("engine"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil {
		t.Fatal("empty source: want error, got nil")
	}
}

func TestOutOfOrderSourceError(t *testing.T) {
	pl, tasks, r := streamScenario(t, 10, 3)
	// Swap two arrivals so the source violates its ordering contract.
	tasks[3], tasks[4] = tasks[4], tasks[3]
	eng, err := NewFromSource(DefaultConfig(), pl, workload.FromSlice(tasks), NewGreedy(), r.Split("engine"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run()
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("out-of-order source: want InvariantError, got %v", err)
	}
}
