package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitTerminal polls until the job settles, returning the final status.
func waitTerminal(t *testing.T, ts string, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never settled", id)
	return JobStatus{}
}

// TestPanicFailsOnlyItsJob injects a panic into one job's execution and
// checks the blast radius: that job settles as failed with the panic and
// a stack trace in its record, while the daemon keeps serving and the
// next job completes normally.
func TestPanicFailsOnlyItsJob(t *testing.T) {
	s, ts := newTestServer(t, Options{Jobs: 1})
	var arm atomic.Bool
	arm.Store(true)
	s.pointGate = func() {
		if arm.Load() {
			panic("injected chaos: policy bug")
		}
	}

	body := `{"kind": "points", "points": [{"Policy": "greedy", "NumTasks": 10, "Seed": 1}],
		"profile": ` + tinyProfile + `}`
	code, m := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %v", code, m)
	}
	st := waitTerminal(t, ts.URL, m["id"].(string))
	if st.State != StateFailed {
		t.Fatalf("sabotaged job settled as %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "injected chaos") {
		t.Fatalf("job error does not carry the panic: %q", st.Error)
	}
	if !strings.Contains(st.Error, "goroutine") && !strings.Contains(st.Error, ".go:") {
		t.Fatalf("job error does not carry a stack trace: %q", st.Error)
	}

	// The daemon survived: the next, unsabotaged job runs to done.
	arm.Store(false)
	code, m = postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit after panic: HTTP %d: %v", code, m)
	}
	if st := waitTerminal(t, ts.URL, m["id"].(string)); st.State != StateDone {
		t.Fatalf("follow-up job settled as %s (%s), want done", st.State, st.Error)
	}
}

// TestServerGluePanicIsolated panics outside the simulation layer's own
// recovery — in the server's execution glue — and checks that safeRun
// contains it: the job fails with the stack, the worker survives.
func TestServerGluePanicIsolated(t *testing.T) {
	s, ts := newTestServer(t, Options{Jobs: 1})
	var arm atomic.Bool
	arm.Store(true)
	s.faultInject = func(int) error {
		if arm.Load() {
			panic("glue bug")
		}
		return nil
	}

	body := `{"kind": "points", "points": [{"Policy": "greedy", "NumTasks": 10, "Seed": 1}],
		"profile": ` + tinyProfile + `}`
	code, m := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %v", code, m)
	}
	st := waitTerminal(t, ts.URL, m["id"].(string))
	if st.State != StateFailed || !strings.Contains(st.Error, "glue bug") {
		t.Fatalf("job settled as %s (%q), want failed with the panic", st.State, st.Error)
	}

	arm.Store(false)
	code, m = postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit after glue panic: HTTP %d: %v", code, m)
	}
	if st := waitTerminal(t, ts.URL, m["id"].(string)); st.State != StateDone {
		t.Fatalf("follow-up job settled as %s, want done", st.State)
	}
}

// TestJobTimeout submits a job whose points are slowed past its
// timeout_sec and expects the distinct timeout state.
func TestJobTimeout(t *testing.T) {
	s, ts := newTestServer(t, Options{Jobs: 1})
	// Each completed point costs 30ms, so the 20ms deadline expires
	// before the second of five points starts.
	s.pointGate = func() { time.Sleep(30 * time.Millisecond) }

	var pts []string
	for i := 0; i < 5; i++ {
		pts = append(pts, fmt.Sprintf(`{"Policy": "greedy", "NumTasks": 10, "Seed": %d}`, i+1))
	}
	body := `{"kind": "points", "timeout_sec": 0.02, "points": [` + strings.Join(pts, ",") + `],
		"profile": {"Replications": 1, "ObservationPeriod": 300, "LightTasks": 20, "HeavyTasks": 30, "Workers": 1}}`
	code, m := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %v", code, m)
	}
	st := waitTerminal(t, ts.URL, m["id"].(string))
	if st.State != StateTimeout {
		t.Fatalf("job settled as %s (%q), want timeout", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "timed out") {
		t.Fatalf("timeout error = %q", st.Error)
	}

	_, raw := getJSON(t, ts.URL+"/metrics?format=json")
	var vars map[string]float64
	if err := json.Unmarshal(raw, &vars); err != nil {
		t.Fatal(err)
	}
	if vars["jobs_timeout"] < 1 {
		t.Fatalf("jobs_timeout = %v, want >= 1: %s", vars["jobs_timeout"], raw)
	}
}

// TestTransientFaultRetried injects two transient faults and expects the
// third attempt to succeed, with the attempt count on the wire and the
// retry counter on /metrics.
func TestTransientFaultRetried(t *testing.T) {
	s, ts := newTestServer(t, Options{Jobs: 1})
	s.retryBase = time.Millisecond
	var calls atomic.Int64
	s.faultInject = func(attempt int) error {
		calls.Add(1)
		if attempt < 2 {
			return fmt.Errorf("scratch volume flaked: %w", ErrTransient)
		}
		return nil
	}

	body := `{"kind": "points", "max_retries": 3, "points": [{"Policy": "greedy", "NumTasks": 10, "Seed": 1}],
		"profile": ` + tinyProfile + `}`
	code, m := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %v", code, m)
	}
	st := waitTerminal(t, ts.URL, m["id"].(string))
	if st.State != StateDone {
		t.Fatalf("job settled as %s (%q), want done after retries", st.State, st.Error)
	}
	if st.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", st.Attempts)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("faultInject called %d times, want 3", n)
	}

	_, raw := getJSON(t, ts.URL+"/metrics?format=json")
	var vars map[string]float64
	if err := json.Unmarshal(raw, &vars); err != nil {
		t.Fatal(err)
	}
	if vars["job_retries"] != 2 {
		t.Fatalf("job_retries = %v, want 2: %s", vars["job_retries"], raw)
	}
}

// TestTransientFaultExhaustsRetries keeps faulting past the retry budget
// and expects a failed job whose attempt count equals 1 + max_retries.
func TestTransientFaultExhaustsRetries(t *testing.T) {
	s, ts := newTestServer(t, Options{Jobs: 1})
	s.retryBase = time.Millisecond
	s.faultInject = func(int) error {
		return fmt.Errorf("still flaking: %w", ErrTransient)
	}

	body := `{"kind": "points", "max_retries": 2, "points": [{"Policy": "greedy", "NumTasks": 10, "Seed": 1}],
		"profile": ` + tinyProfile + `}`
	code, m := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %v", code, m)
	}
	st := waitTerminal(t, ts.URL, m["id"].(string))
	if st.State != StateFailed || !strings.Contains(st.Error, "still flaking") {
		t.Fatalf("job settled as %s (%q), want failed with the fault", st.State, st.Error)
	}
	if st.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + max_retries)", st.Attempts)
	}
}

// TestDeterministicFailureNotRetried pins the retry classifier: a model
// error (bad heterogeneity) is deterministic and must fail on the first
// attempt regardless of the retry budget.
func TestDeterministicFailureNotRetried(t *testing.T) {
	s, ts := newTestServer(t, Options{Jobs: 1})
	s.retryBase = time.Millisecond
	body := `{"kind": "points", "max_retries": 5,
		"points": [{"Policy": "greedy", "NumTasks": 10, "HeterogeneityCV": 99}],
		"profile": ` + tinyProfile + `}`
	code, m := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %v", code, m)
	}
	st := waitTerminal(t, ts.URL, m["id"].(string))
	if st.State != StateFailed {
		t.Fatalf("job settled as %s, want failed", st.State)
	}
	if st.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (deterministic errors are never retried)", st.Attempts)
	}
}

// TestSSEKeepalive holds a job mid-flight and expects the quiet stream
// to carry keepalive comments.
func TestSSEKeepalive(t *testing.T) {
	s, ts := newTestServer(t, Options{Jobs: 1})
	s.keepAlive = 5 * time.Millisecond
	release := make(chan struct{})
	var relOnce sync.Once
	t.Cleanup(func() { relOnce.Do(func() { close(release) }) })
	s.pointGate = func() { <-release }

	body := `{"kind": "points", "points": [
		{"Policy": "greedy", "NumTasks": 10, "Seed": 1},
		{"Policy": "greedy", "NumTasks": 10, "Seed": 2}
	], "profile": {"Replications": 1, "ObservationPeriod": 300, "LightTasks": 20, "HeavyTasks": 30, "Workers": 1}}`
	code, m := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %v", code, m)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + m["id"].(string) + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	saw := false
	deadline := time.AfterFunc(10*time.Second, func() { resp.Body.Close() })
	defer deadline.Stop()
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), ": keepalive") {
			saw = true
			break
		}
	}
	if !saw {
		t.Fatal("stream never carried a keepalive comment")
	}
	relOnce.Do(func() { close(release) })
}

// TestSSEClientDisconnect opens progress streams against a parked job,
// drops them, and checks that the handler goroutines tear down promptly
// and the job still completes. Run under -race this also shakes out
// unsynchronised teardown.
func TestSSEClientDisconnect(t *testing.T) {
	s, ts := newTestServer(t, Options{Jobs: 1})
	s.keepAlive = 5 * time.Millisecond
	started := make(chan struct{})
	release := make(chan struct{})
	var startOnce, relOnce sync.Once
	t.Cleanup(func() { relOnce.Do(func() { close(release) }) })
	s.pointGate = func() {
		startOnce.Do(func() { close(started) })
		<-release
	}

	body := `{"kind": "points", "points": [
		{"Policy": "greedy", "NumTasks": 10, "Seed": 1},
		{"Policy": "greedy", "NumTasks": 10, "Seed": 2}
	], "profile": {"Replications": 1, "ObservationPeriod": 300, "LightTasks": 20, "HeavyTasks": 30, "Workers": 1}}`
	code, m := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %v", code, m)
	}
	id := m["id"].(string)
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("job never started")
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < 4; i++ {
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		// Read the first event so the handler is demonstrably live.
		buf := make([]byte, 1)
		if _, err := resp.Body.Read(buf); err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
	}
	// Drop every client at once; the handlers must notice and exit.
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines leaked after disconnect: %d before, %d after", before, g)
	}

	// Dropped spectators must not block the job itself.
	relOnce.Do(func() { close(release) })
	if st := waitTerminal(t, ts.URL, id); st.State != StateDone {
		t.Fatalf("job settled as %s (%q), want done", st.State, st.Error)
	}
}
