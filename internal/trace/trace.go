// Package trace provides lightweight structured tracing for simulation
// runs: levelled events carrying the virtual timestamp, an event kind and
// key/value fields. The engine emits events at every scheduling decision
// point; sinks include a bounded ring buffer (for tests and post-mortem
// inspection), a line writer (for cmd tools), a counter (for cheap
// aggregate assertions) and a fan-out.
//
// Tracing is strictly optional: a nil Tracer disables all emission and the
// engine's fast path pays only a nil check.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Level grades event importance.
type Level int

// Levels in increasing severity.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Field is one key/value attribute of an event.
type Field struct {
	Key   string
	Value any
}

// F constructs a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Event is one traced occurrence in virtual time.
type Event struct {
	// At is the simulation timestamp.
	At float64
	// Level grades importance.
	Level Level
	// Kind is a stable, machine-matchable identifier such as "arrival",
	// "group-close", "dispatch", "finish", "sleep", "wake".
	Kind string
	// Fields carry the event attributes.
	Fields []Field
}

// String renders the event as a single line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%10.3f] %-5s %-14s", e.At, e.Level, e.Kind)
	for _, f := range e.Fields {
		fmt.Fprintf(&b, " %s=%v", f.Key, f.Value)
	}
	return b.String()
}

// Tracer consumes events.
type Tracer interface {
	// Emit records one event. Implementations must be cheap; the engine
	// calls this on hot paths.
	Emit(e Event)
	// Enabled reports whether events at the level would be kept, letting
	// callers skip field construction.
	Enabled(l Level) bool
}

// Ring is a bounded in-memory tracer retaining the most recent events.
// It is safe for concurrent use: a campaign's parallel workers may share
// one ring across simulation points while a snapshot is being served
// (the daemon's per-job trace capture does exactly that). Single-run
// callers pay one uncontended lock per emitted event.
type Ring struct {
	min Level
	cap int

	mu    sync.Mutex
	buf   []Event
	start int
	total uint64
}

// NewRing creates a ring tracer keeping up to capacity events at or above
// the given level. Capacity must be positive.
func NewRing(capacity int, min Level) *Ring {
	if capacity <= 0 {
		panic(fmt.Sprintf("trace: ring capacity must be positive, got %d", capacity))
	}
	return &Ring{min: min, cap: capacity}
}

// Emit implements Tracer.
func (r *Ring) Emit(e Event) {
	if e.Level < r.min {
		return
	}
	r.mu.Lock()
	r.total++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.start] = e
		r.start = (r.start + 1) % r.cap
	}
	r.mu.Unlock()
}

// Enabled implements Tracer.
func (r *Ring) Enabled(l Level) bool { return l >= r.min }

// Len returns the number of retained events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total returns the number of events ever emitted at or above the level.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns a snapshot of the retained events oldest-first. The
// snapshot is consistent: emits racing with it land entirely before or
// entirely after.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	for i := 0; i < len(r.buf); i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}

// ByKind filters retained events by kind, oldest-first.
func (r *Ring) ByKind(kind string) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Counter tallies events per kind without retaining them.
type Counter struct {
	min    Level
	counts map[string]uint64
}

// NewCounter creates a counter keeping tallies for events at or above the
// level.
func NewCounter(min Level) *Counter {
	return &Counter{min: min, counts: make(map[string]uint64)}
}

// Emit implements Tracer.
func (c *Counter) Emit(e Event) {
	if e.Level < c.min {
		return
	}
	c.counts[e.Kind]++
}

// Enabled implements Tracer.
func (c *Counter) Enabled(l Level) bool { return l >= c.min }

// Count returns the tally for one kind.
func (c *Counter) Count(kind string) uint64 { return c.counts[kind] }

// Kinds returns the observed kinds, sorted.
func (c *Counter) Kinds() []string {
	out := make([]string, 0, len(c.counts))
	for k := range c.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Writer streams each event as a line to an io.Writer.
type Writer struct {
	min Level
	w   io.Writer
	// Err records the first write failure; subsequent events are dropped.
	Err error
}

// NewWriter creates a line-writing tracer for events at or above the
// level.
func NewWriter(w io.Writer, min Level) *Writer { return &Writer{min: min, w: w} }

// Emit implements Tracer.
func (t *Writer) Emit(e Event) {
	if e.Level < t.min || t.Err != nil {
		return
	}
	if _, err := io.WriteString(t.w, e.String()+"\n"); err != nil {
		t.Err = err
	}
}

// Enabled implements Tracer.
func (t *Writer) Enabled(l Level) bool { return l >= t.min && t.Err == nil }

// Multi fans events out to several tracers.
type Multi []Tracer

// Emit implements Tracer.
func (m Multi) Emit(e Event) {
	for _, t := range m {
		if t != nil && t.Enabled(e.Level) {
			t.Emit(e)
		}
	}
}

// Enabled implements Tracer.
func (m Multi) Enabled(l Level) bool {
	for _, t := range m {
		if t != nil && t.Enabled(l) {
			return true
		}
	}
	return false
}
