package grouping

import (
	"math"
	"testing"
	"testing/quick"

	"rlsched/internal/rng"
	"rlsched/internal/workload"
)

func counter() func() int {
	n := 0
	return func() int { n++; return n - 1 }
}

func task(id int, prio workload.Priority, size, deadline, arrival float64) *workload.Task {
	return &workload.Task{
		ID: id, SizeMI: size, ACT: size / 500, Deadline: deadline,
		Priority: prio, ArrivalTime: arrival, StartTime: -1, FinishTime: -1,
	}
}

func TestPWEq10(t *testing.T) {
	tasks := []*workload.Task{
		{SizeMI: 1000, Deadline: 4},
		{SizeMI: 2000, Deadline: 6},
	}
	want := 3000.0 / 10.0
	if got := PW(tasks); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PW = %g, want %g", got, want)
	}
	if PW(nil) != 0 {
		t.Fatal("PW of empty slice must be 0")
	}
}

func TestProcFitnessAndErrTG(t *testing.T) {
	if got := ProcFitness(300, 300); got != 1 {
		t.Fatalf("fitness %g, want 1", got)
	}
	if got := ErrTG(1); got != 0 {
		t.Fatalf("perfect fit error %g, want 0", got)
	}
	// Undersized group: fitness 0.5 -> err |1-2| = 1.
	if got := ErrTG(0.5); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ErrTG(0.5) = %g, want 1", got)
	}
	// Oversized group: fitness 2 -> err 0.5.
	if got := ErrTG(2); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("ErrTG(2) = %g, want 0.5", got)
	}
	if !math.IsInf(ErrTG(0), 1) {
		t.Fatal("zero fitness must give +Inf error")
	}
}

func TestProcFitnessPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ProcFitness(10, 0)
}

func TestMixedMergeClosesAtOpnum(t *testing.T) {
	m := NewMerger(ModeMixed, counter())
	var g *Group
	for i := 0; i < 3; i++ {
		g = m.Add(task(i, workload.PriorityMedium, 1000, 5, float64(i)), 3, float64(i))
		if i < 2 && g != nil {
			t.Fatalf("group closed early at task %d", i)
		}
	}
	if g == nil {
		t.Fatal("group did not close at opnum")
	}
	if g.Len() != 3 {
		t.Fatalf("group size %d, want 3", g.Len())
	}
	if m.Pending() != 0 {
		t.Fatalf("%d tasks still pending", m.Pending())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMixedMergeMixesPriorities(t *testing.T) {
	m := NewMerger(ModeMixed, counter())
	m.Add(task(0, workload.PriorityLow, 1000, 20, 0), 2, 0)
	g := m.Add(task(1, workload.PriorityHigh, 1000, 2, 1), 2, 1)
	if g == nil {
		t.Fatal("expected closed group")
	}
	if g.Mode != ModeMixed {
		t.Fatalf("mode %v", g.Mode)
	}
	if g.Priority != workload.PriorityHigh {
		t.Fatalf("mixed group priority %v, want high (max member)", g.Priority)
	}
}

func TestIdenticalMergeSeparatesPriorities(t *testing.T) {
	m := NewMerger(ModeIdentical, counter())
	if g := m.Add(task(0, workload.PriorityLow, 1000, 20, 0), 2, 0); g != nil {
		t.Fatal("low buffer closed early")
	}
	if g := m.Add(task(1, workload.PriorityHigh, 1000, 2, 1), 2, 1); g != nil {
		t.Fatal("high buffer closed early")
	}
	g := m.Add(task(2, workload.PriorityHigh, 1000, 2.2, 2), 2, 2)
	if g == nil {
		t.Fatal("high buffer should close at 2 tasks")
	}
	for _, task := range g.Tasks {
		if task.Priority != workload.PriorityHigh {
			t.Fatalf("identical group contains %v task", task.Priority)
		}
	}
	if m.Pending() != 1 {
		t.Fatalf("pending %d, want 1 (the low task)", m.Pending())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGroupEDFOrder(t *testing.T) {
	m := NewMerger(ModeMixed, counter())
	m.Add(task(0, workload.PriorityMedium, 1000, 50, 0), 3, 0)
	m.Add(task(1, workload.PriorityMedium, 1000, 5, 1), 3, 1)
	g := m.Add(task(2, workload.PriorityMedium, 1000, 20, 2), 3, 2)
	if g == nil {
		t.Fatal("expected group")
	}
	for i := 1; i < g.Len(); i++ {
		if g.Tasks[i-1].AbsoluteDeadline() > g.Tasks[i].AbsoluteDeadline() {
			t.Fatal("group not EDF-sorted")
		}
	}
	if g.Tasks[0].ID != 1 {
		t.Fatalf("EDF head ID %d, want 1", g.Tasks[0].ID)
	}
}

func TestOpnumBelowOneClamped(t *testing.T) {
	m := NewMerger(ModeMixed, counter())
	g := m.Add(task(0, workload.PriorityMedium, 1000, 5, 0), 0, 0)
	if g == nil || g.Len() != 1 {
		t.Fatal("opnum<1 must behave as 1")
	}
}

func TestFlushOldest(t *testing.T) {
	m := NewMerger(ModeIdentical, counter())
	m.Add(task(0, workload.PriorityLow, 1000, 20, 5), 10, 5)
	m.Add(task(1, workload.PriorityHigh, 1000, 2, 1), 10, 1)
	at, ok := m.OldestOpen()
	if !ok || at != 1 {
		t.Fatalf("OldestOpen = %g,%v want 1,true", at, ok)
	}
	g := m.FlushOldest(10)
	if g == nil || g.Priority != workload.PriorityHigh {
		t.Fatal("FlushOldest should close the high-priority buffer first")
	}
	g2 := m.FlushOldest(10)
	if g2 == nil || g2.Priority != workload.PriorityLow {
		t.Fatal("second flush should close the low buffer")
	}
	if m.FlushOldest(10) != nil {
		t.Fatal("empty merger must flush nil")
	}
}

func TestFlushAll(t *testing.T) {
	m := NewMerger(ModeIdentical, counter())
	m.Add(task(0, workload.PriorityLow, 1000, 20, 0), 10, 0)
	m.Add(task(1, workload.PriorityMedium, 1000, 10, 1), 10, 1)
	m.Add(task(2, workload.PriorityHigh, 1000, 2, 2), 10, 2)
	groups := m.FlushAll(5)
	if len(groups) != 3 {
		t.Fatalf("FlushAll returned %d groups, want 3", len(groups))
	}
	if m.Pending() != 0 {
		t.Fatal("pending tasks after FlushAll")
	}
}

func TestOldestOpenEmpty(t *testing.T) {
	m := NewMerger(ModeMixed, counter())
	if _, ok := m.OldestOpen(); ok {
		t.Fatal("empty merger reports an open buffer")
	}
}

func TestGroupLifecycle(t *testing.T) {
	g := &Group{ID: 1, Tasks: []*workload.Task{
		task(0, workload.PriorityMedium, 1000, 5, 0),
		task(1, workload.PriorityMedium, 1000, 6, 0),
	}}
	if g.FullyDispatched() || g.Complete() {
		t.Fatal("fresh group must not be dispatched/complete")
	}
	first := g.NextUndispatched()
	if first == nil || first.ID != 0 {
		t.Fatal("EDF-first undispatched wrong")
	}
	g.NoteDispatched()
	g.NoteDispatched()
	if !g.FullyDispatched() {
		t.Fatal("group should be fully dispatched")
	}
	if g.NextUndispatched() != nil {
		t.Fatal("no undispatched task should remain")
	}
	if g.NoteFinished(true) {
		t.Fatal("group complete after one of two finishes")
	}
	if !g.NoteFinished(false) {
		t.Fatal("group must report completion on last finish")
	}
	if g.Reward() != 1 {
		t.Fatalf("reward %d, want 1", g.Reward())
	}
}

func TestOverDispatchPanics(t *testing.T) {
	g := &Group{Tasks: []*workload.Task{task(0, workload.PriorityLow, 1, 1, 0)}}
	g.NoteDispatched()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-dispatch")
		}
	}()
	g.NoteDispatched()
}

func TestOverFinishPanics(t *testing.T) {
	g := &Group{Tasks: []*workload.Task{task(0, workload.PriorityLow, 1, 1, 0)}}
	g.NoteDispatched()
	g.NoteFinished(true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-finish")
		}
	}()
	g.NoteFinished(true)
}

func TestSplitOff(t *testing.T) {
	g := &Group{Tasks: []*workload.Task{
		task(0, workload.PriorityMedium, 1000, 3, 0),
		task(1, workload.PriorityMedium, 1000, 5, 0),
		task(2, workload.PriorityMedium, 1000, 7, 0),
	}}
	split := g.SplitOff(2)
	if len(split) != 2 {
		t.Fatalf("split %d tasks, want 2", len(split))
	}
	if split[0].ID != 0 || split[1].ID != 1 {
		t.Fatal("split must take EDF-first tasks")
	}
	if g.Len() != 1 || g.Tasks[0].ID != 2 {
		t.Fatal("group should retain the last task")
	}
}

func TestSplitOffRespectsDispatched(t *testing.T) {
	g := &Group{Tasks: []*workload.Task{
		task(0, workload.PriorityMedium, 1000, 3, 0),
		task(1, workload.PriorityMedium, 1000, 5, 0),
	}}
	g.NoteDispatched()
	split := g.SplitOff(5)
	if len(split) != 1 || split[0].ID != 1 {
		t.Fatal("split must only take undispatched tasks")
	}
	if g.SplitOff(1) != nil {
		t.Fatal("nothing left to split")
	}
}

func TestValidateDetectsDisorder(t *testing.T) {
	g := &Group{Tasks: []*workload.Task{
		task(0, workload.PriorityMedium, 1000, 50, 0),
		task(1, workload.PriorityMedium, 1000, 5, 0),
	}}
	if err := g.Validate(); err == nil {
		t.Fatal("expected EDF-order validation error")
	}
}

func TestValidateIdenticalPriorityMembership(t *testing.T) {
	g := &Group{Mode: ModeIdentical, Priority: workload.PriorityHigh,
		Tasks: []*workload.Task{task(0, workload.PriorityLow, 1000, 1000, 0)}}
	if err := g.Validate(); err == nil {
		t.Fatal("expected identical-priority membership error")
	}
}

func TestSetMode(t *testing.T) {
	m := NewMerger(ModeMixed, counter())
	m.SetMode(ModeIdentical)
	if m.Mode() != ModeIdentical {
		t.Fatal("SetMode did not switch")
	}
}

// Property: merging any sequence of tasks with any opnum never loses or
// duplicates a task: closed groups + pending = added.
func TestQuickMergeConservation(t *testing.T) {
	r := rng.NewStream(21, "q")
	f := func(n uint8, opnumRaw uint8, identical bool) bool {
		mode := ModeMixed
		if identical {
			mode = ModeIdentical
		}
		m := NewMerger(mode, counter())
		opnum := int(opnumRaw)%6 + 1
		total := int(n) % 60
		seen := map[int]int{}
		closed := 0
		for i := 0; i < total; i++ {
			prio := workload.Priorities[r.Intn(3)]
			g := m.Add(task(i, prio, 1000, r.Uniform(1, 50), float64(i)), opnum, float64(i))
			if g != nil {
				if g.Validate() != nil {
					return false
				}
				for _, tk := range g.Tasks {
					seen[tk.ID]++
				}
				closed += g.Len()
			}
		}
		for _, g := range m.FlushAll(float64(total)) {
			for _, tk := range g.Tasks {
				seen[tk.ID]++
			}
			closed += g.Len()
		}
		if closed != total {
			return false
		}
		for id, c := range seen {
			if c != 1 || id < 0 || id >= total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: ErrTG is zero iff fitness is 1 and non-negative everywhere.
func TestQuickErrTGProperties(t *testing.T) {
	f := func(raw uint16) bool {
		fitness := float64(raw)/1000 + 0.001
		e := ErrTG(fitness)
		if e < 0 {
			return false
		}
		if math.Abs(fitness-1) < 1e-12 && e > 1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: SplitOff(k) followed by the remainder preserves the task
// multiset and EDF order of the undispatched tail.
func TestQuickSplitConservation(t *testing.T) {
	r := rng.NewStream(22, "q")
	f := func(n, k uint8) bool {
		total := int(n)%20 + 1
		tasks := make([]*workload.Task, total)
		for i := range tasks {
			tasks[i] = task(i, workload.PriorityMedium, 1000, r.Uniform(1, 100), 0)
		}
		workload.SortEDF(tasks)
		g := &Group{Tasks: append([]*workload.Task(nil), tasks...)}
		split := g.SplitOff(int(k) % (total + 2))
		return len(split)+g.Len() == total && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMerge(b *testing.B) {
	r := rng.NewStream(1, "bench")
	m := NewMerger(ModeIdentical, counter())
	for i := 0; i < b.N; i++ {
		prio := workload.Priorities[r.Intn(3)]
		m.Add(task(i, prio, 1000, r.Uniform(1, 50), float64(i)), 5, float64(i))
	}
}

func TestFlushExpiredPerClassTimeouts(t *testing.T) {
	m := NewMerger(ModeIdentical, counter())
	// High-priority task waits since t=0, low-priority since t=2.
	m.Add(task(0, workload.PriorityHigh, 1000, 2, 0), 10, 0)
	m.Add(task(1, workload.PriorityLow, 1000, 50, 2), 10, 2)
	timeouts := [4]float64{40, 20, 5, 10} // low, medium, high, mixed
	// At t=6 only the high buffer (age 6 >= 5) expires.
	groups := m.FlushExpired(6, timeouts)
	if len(groups) != 1 || groups[0].Priority != workload.PriorityHigh {
		t.Fatalf("expected only the high buffer to expire, got %d groups", len(groups))
	}
	// At t=41 the low buffer (age 39 < 40) still holds...
	if got := m.FlushExpired(41, timeouts); len(got) != 0 {
		t.Fatalf("low buffer expired early: %d groups", len(got))
	}
	// ...and at t=42 it expires.
	groups = m.FlushExpired(42.1, timeouts)
	if len(groups) != 1 || groups[0].Priority != workload.PriorityLow {
		t.Fatalf("low buffer did not expire, got %d groups", len(groups))
	}
	if m.Pending() != 0 {
		t.Fatalf("%d tasks still pending", m.Pending())
	}
}

func TestFlushExpiredMixedBuffer(t *testing.T) {
	m := NewMerger(ModeMixed, counter())
	m.Add(task(0, workload.PriorityMedium, 1000, 5, 1), 10, 1)
	timeouts := [4]float64{40, 20, 5, 10}
	if got := m.FlushExpired(10, timeouts); len(got) != 0 {
		t.Fatal("mixed buffer expired before its timeout")
	}
	got := m.FlushExpired(11, timeouts)
	if len(got) != 1 || got[0].Mode != ModeMixed {
		t.Fatalf("mixed buffer flush: %v", got)
	}
}

func TestFlushExpiredEmpty(t *testing.T) {
	m := NewMerger(ModeMixed, counter())
	if got := m.FlushExpired(100, [4]float64{1, 1, 1, 1}); got != nil {
		t.Fatalf("empty merger flushed %d groups", len(got))
	}
}
