package report

import (
	"fmt"
	"html"
	"sort"
	"strings"

	"rlsched/internal/obs/span"
)

// Waterfall geometry. Rows are short and dense — a campaign trace can
// carry hundreds of spans — and the width matches the line charts so a
// report reads as one column.
const (
	wfW        = 720
	wfRowH     = 18
	wfPadLeft  = 8
	wfPadRight = 14
	wfPadTop   = 6
	wfPadBot   = 28
	wfIndent   = 12
	wfMinBar   = 2 // px; zero-width marker spans still get a visible tick
	wfMaxRows  = 400
)

// wfRow is one laid-out waterfall row: a span, its tree depth and its
// display label.
type wfRow struct {
	rec    span.Record
	depth  int
	orphan bool
}

// AddWaterfall appends a distributed-trace waterfall: one bar per span,
// indented by tree depth, positioned and sized on a shared wall-clock
// axis. Like every section it is inline SVG plus a data table — no
// scripts — so tooltips are native <title> elements. Spans whose parent
// is missing from the set (evicted from a bounded buffer, or a worker
// fetch that failed) are kept and flagged as orphans rather than
// silently dropped.
func (h *HTMLReport) AddWaterfall(heading string, spans []span.Record) {
	var b strings.Builder
	fmt.Fprintf(&b, "<section>\n<h2>%s</h2>\n", html.EscapeString(heading))
	if len(spans) == 0 {
		b.WriteString("<p class=\"note\">no spans recorded.</p>\n</section>\n")
		h.sections = append(h.sections, b.String())
		return
	}
	rows := layoutWaterfall(spans)
	plotted := rows
	if len(plotted) > wfMaxRows {
		plotted = plotted[:wfMaxRows]
	}

	// The shared clock: bar positions are offsets from the earliest start.
	t0, t1 := rows[0].rec.StartUnixNs, rows[0].rec.EndUnixNs
	for _, r := range rows {
		if r.rec.StartUnixNs < t0 {
			t0 = r.rec.StartUnixNs
		}
		if r.rec.EndUnixNs > t1 {
			t1 = r.rec.EndUnixNs
		}
	}
	spanNs := t1 - t0
	if spanNs <= 0 {
		spanNs = 1
	}
	// Label column: indent by depth, then the name. Bars start after it.
	labelW := 0
	for _, r := range plotted {
		if w := r.depth*wfIndent + 7*len(r.rec.Name); w > labelW {
			labelW = w
		}
	}
	if labelW > wfW/2 {
		labelW = wfW / 2
	}
	barX0 := wfPadLeft + labelW + 10
	barW := float64(wfW - barX0 - wfPadRight)
	sx := func(ns int64) float64 {
		return float64(barX0) + float64(ns-t0)/float64(spanNs)*barW
	}
	slots := nameSlots(rows)
	height := wfPadTop + len(plotted)*wfRowH + wfPadBot

	fmt.Fprintf(&b, "<figure class=\"viz-root\">\n<svg viewBox=\"0 0 %d %d\" width=\"%d\" height=\"%d\" role=\"img\">\n",
		wfW, height, wfW, height)
	// Time axis: gridlines in milliseconds since the trace's first span.
	for _, t := range niceTicks(0, float64(spanNs)/1e6, 6) {
		x := sx(t0 + int64(t*1e6))
		fmt.Fprintf(&b, "<line class=\"grid\" x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\"/>\n",
			x, wfPadTop, x, wfPadTop+len(plotted)*wfRowH)
		fmt.Fprintf(&b, "<text class=\"tick\" x=\"%.1f\" y=\"%d\" text-anchor=\"middle\">%s</text>\n",
			x, wfPadTop+len(plotted)*wfRowH+14, trimFloat(t))
	}
	fmt.Fprintf(&b, "<text class=\"label\" x=\"%.1f\" y=\"%d\" text-anchor=\"middle\">ms since trace start</text>\n",
		float64(barX0)+barW/2, height-6)

	for i, r := range plotted {
		y := wfPadTop + i*wfRowH
		name := r.rec.Name
		if r.orphan {
			name += " (orphan)"
		}
		fmt.Fprintf(&b, "<text class=\"wf-name\" x=\"%d\" y=\"%d\">%s</text>\n",
			wfPadLeft+r.depth*wfIndent, y+wfRowH-5, html.EscapeString(name))
		x := sx(r.rec.StartUnixNs)
		w := sx(r.rec.EndUnixNs) - x
		if w < wfMinBar {
			w = wfMinBar
		}
		fmt.Fprintf(&b, "<rect class=\"wf-bar s%d\" x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\"><title>%s</title></rect>\n",
			slots[r.rec.Name], x, y+3, w, wfRowH-6, html.EscapeString(spanTooltip(r.rec, t0)))
	}
	b.WriteString("</svg>\n")
	if len(rows) > wfMaxRows {
		fmt.Fprintf(&b, "<p class=\"note\">%d of %d spans plotted; the data table below carries all of them.</p>\n",
			wfMaxRows, len(rows))
	}

	// The table view: every span, readable without the plot.
	b.WriteString("<details><summary>Span table</summary>\n<table class=\"data\">\n")
	b.WriteString("<tr><th>span</th><th>parent</th><th>name</th><th>start (ms)</th><th>dur (ms)</th><th>attrs</th></tr>\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
			html.EscapeString(r.rec.SpanID), html.EscapeString(r.rec.ParentID),
			html.EscapeString(r.rec.Name),
			trimFloat(float64(r.rec.StartUnixNs-t0)/1e6),
			trimFloat(float64(r.rec.EndUnixNs-r.rec.StartUnixNs)/1e6),
			html.EscapeString(formatAttrs(r.rec.Attrs)))
	}
	b.WriteString("</table>\n</details>\n</figure>\n</section>\n")
	h.sections = append(h.sections, b.String())
}

// layoutWaterfall orders spans depth-first from the roots, children by
// (start, span id) so the layout is deterministic for a given span set.
// Spans whose parent is absent become flagged roots.
func layoutWaterfall(spans []span.Record) []wfRow {
	byID := make(map[string]span.Record, len(spans))
	children := make(map[string][]span.Record)
	for _, r := range spans {
		byID[r.SpanID] = r
	}
	var roots []span.Record
	orphan := make(map[string]bool)
	for _, r := range spans {
		if r.ParentID == "" {
			roots = append(roots, r)
			continue
		}
		if _, ok := byID[r.ParentID]; !ok {
			orphan[r.SpanID] = true
			roots = append(roots, r)
			continue
		}
		children[r.ParentID] = append(children[r.ParentID], r)
	}
	order := func(rs []span.Record) {
		sort.Slice(rs, func(i, j int) bool {
			if rs[i].StartUnixNs != rs[j].StartUnixNs {
				return rs[i].StartUnixNs < rs[j].StartUnixNs
			}
			return rs[i].SpanID < rs[j].SpanID
		})
	}
	order(roots)
	rows := make([]wfRow, 0, len(spans))
	var walk func(r span.Record, depth int)
	walk = func(r span.Record, depth int) {
		rows = append(rows, wfRow{rec: r, depth: depth, orphan: orphan[r.SpanID]})
		kids := children[r.SpanID]
		order(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return rows
}

// nameSlots assigns each distinct span name a palette slot in first-seen
// layout order, cycling past eight: bars are colored by operation, so
// every lease.attempt reads as the same kind of work.
func nameSlots(rows []wfRow) map[string]int {
	slots := make(map[string]int)
	for _, r := range rows {
		if _, ok := slots[r.rec.Name]; !ok {
			slots[r.rec.Name] = len(slots)%maxChartSeries + 1
		}
	}
	return slots
}

// spanTooltip builds a bar's native tooltip: name, timing and every
// attribute in sorted order.
func spanTooltip(r span.Record, t0 int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s ms at +%s ms", r.Name,
		trimFloat(float64(r.EndUnixNs-r.StartUnixNs)/1e6),
		trimFloat(float64(r.StartUnixNs-t0)/1e6))
	if a := formatAttrs(r.Attrs); a != "" {
		b.WriteString("\n" + a)
	}
	return b.String()
}

// formatAttrs renders an attribute map as "k=v k=v" with sorted keys.
func formatAttrs(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%v", k, attrs[k])
	}
	return b.String()
}
