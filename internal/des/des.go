// Package des implements a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a calendar queue of timestamped
// events (see calendar.go — amortised O(1) insert/pop, so multi-million-event
// runs do not pay a log-factor per event). Events scheduled for the same
// instant are executed in FIFO order of scheduling (a monotone sequence
// number breaks ties), which makes runs bit-for-bit reproducible for a fixed
// seed regardless of map iteration or goroutine scheduling — the engine is
// strictly single-threaded.
//
// The paper's evaluation (ICPP'11, §V) is a pure simulation study; this
// package is the substrate every experiment runs on.
package des

import (
	"fmt"
	"math"
)

// Time is the simulator's virtual time, in abstract "time units"
// (the paper reports response times in "t units").
type Time = float64

// Event is a scheduled callback. Fire is invoked exactly once, when the
// simulation clock reaches the event's timestamp, unless the event was
// cancelled first.
type Event interface {
	// Fire executes the event's effect. The engine passes itself so events
	// can schedule follow-up events.
	Fire(sim *Simulator)
}

// EventFunc adapts a plain function to the Event interface.
type EventFunc func(sim *Simulator)

// Fire implements Event.
func (f EventFunc) Fire(sim *Simulator) { f(sim) }

// Handle identifies a scheduled event and allows cancellation. Queue items
// are recycled once fired or reaped, so the handle carries the item's
// generation: a stale handle (whose item has been reused for a later
// event) is inert rather than aliasing the new event.
type Handle struct {
	item *item
	gen  uint64
}

// Cancelled reports whether the event was cancelled before firing.
func (h Handle) Cancelled() bool {
	return h.item != nil && h.gen == h.item.gen && h.item.cancelled
}

// Valid reports whether the handle refers to a scheduled event.
func (h Handle) Valid() bool { return h.item != nil }

// item is a calendar-queue entry.
type item struct {
	at        Time
	seq       uint64
	gen       uint64
	ev        Event
	cancelled bool
	queued    bool // in the calendar (not yet popped or reaped)
}

// Simulator owns the virtual clock and the pending-event queue.
type Simulator struct {
	now      Time
	seq      uint64
	cal      calendar
	fired    uint64
	maxQueue int
	stopped  bool

	// free recycles popped queue items so steady-state scheduling does not
	// allocate (a simulation fires millions of events; see item.gen for
	// how stale Handles stay safe).
	free []*item

	// MaxEvents bounds the total number of fired events as a runaway
	// guard; zero means no bound.
	MaxEvents uint64
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Pending returns the number of scheduled, uncancelled events.
func (s *Simulator) Pending() int { return s.cal.live }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// HeapHighWater returns the largest pending-event queue length observed
// so far (cancelled-but-unreaped entries included) — a cheap proxy for
// the simulation's peak event pressure.
func (s *Simulator) HeapHighWater() int { return s.maxQueue }

// At schedules ev to fire at absolute time at. Scheduling in the past
// (before Now) panics: it would silently corrupt causality.
func (s *Simulator) At(at Time, ev Event) Handle {
	if math.IsNaN(at) {
		panic("des: scheduling at NaN time")
	}
	if at < s.now {
		panic(fmt.Sprintf("des: scheduling event in the past: at=%g now=%g", at, s.now))
	}
	var it *item
	if n := len(s.free); n > 0 {
		it = s.free[n-1]
		s.free = s.free[:n-1]
		it.at, it.seq, it.ev, it.cancelled = at, s.seq, ev, false
	} else {
		it = &item{at: at, seq: s.seq, ev: ev}
	}
	s.seq++
	s.cal.insert(it)
	if s.cal.total > s.maxQueue {
		s.maxQueue = s.cal.total
	}
	return Handle{item: it, gen: it.gen}
}

// release returns a popped item to the free list. Bumping the generation
// invalidates every outstanding Handle to it before reuse.
func (s *Simulator) release(it *item) {
	it.gen++
	it.ev = nil
	s.free = append(s.free, it)
}

// After schedules ev to fire delay time units from now. Negative delays
// panic.
func (s *Simulator) After(delay Time, ev Event) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %g", delay))
	}
	return s.At(s.now+delay, ev)
}

// AtFunc is shorthand for At with an EventFunc.
func (s *Simulator) AtFunc(at Time, f func(sim *Simulator)) Handle {
	return s.At(at, EventFunc(f))
}

// AfterFunc is shorthand for After with an EventFunc.
func (s *Simulator) AfterFunc(delay Time, f func(sim *Simulator)) Handle {
	return s.After(delay, EventFunc(f))
}

// Cancel marks the event behind h so that it will not fire. Cancelling an
// already-fired or already-cancelled event is a no-op. Returns whether the
// event was actually cancelled by this call. Cancelled entries are lazily
// dropped when popped, and eagerly reaped in bulk once they outnumber the
// live entries, so cancel-heavy runs do not accumulate dead events.
func (s *Simulator) Cancel(h Handle) bool {
	if h.item == nil || h.gen != h.item.gen || h.item.cancelled || !h.item.queued {
		return false
	}
	h.item.cancelled = true
	s.cal.noteCancelled()
	if s.cal.needsReap() {
		s.cal.reap(s.release)
	}
	return true
}

// Stop makes Run return after the currently firing event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Stopped reports whether Stop was called.
func (s *Simulator) Stopped() bool { return s.stopped }

// Step fires the single next event, advancing the clock. It returns false
// when the queue is empty (skipping over cancelled entries).
func (s *Simulator) Step() bool {
	for {
		it := s.cal.popMin()
		if it == nil {
			return false
		}
		if it.cancelled {
			s.release(it)
			continue
		}
		s.now = it.at
		s.cal.advanceTo(s.now)
		s.fired++
		ev := it.ev
		s.release(it)
		ev.Fire(s)
		return true
	}
}

// Run executes events until the queue drains, Stop is called, or MaxEvents
// is exceeded (which panics — it indicates a scheduling loop). It returns
// the final clock value.
func (s *Simulator) Run() Time {
	for !s.stopped {
		if s.MaxEvents > 0 && s.fired >= s.MaxEvents {
			panic(fmt.Sprintf("des: MaxEvents (%d) exceeded at t=%g — likely a scheduling loop", s.MaxEvents, s.now))
		}
		if !s.Step() {
			break
		}
	}
	return s.now
}

// RunUntil executes events with timestamps <= deadline, leaving later
// events queued, and advances the clock to exactly deadline (even if the
// queue drains earlier). It returns the number of events fired.
func (s *Simulator) RunUntil(deadline Time) uint64 {
	if deadline < s.now {
		panic(fmt.Sprintf("des: RunUntil deadline %g before now %g", deadline, s.now))
	}
	start := s.fired
	for !s.stopped {
		next, ok := s.peekTime()
		if !ok || next > deadline {
			break
		}
		if s.MaxEvents > 0 && s.fired >= s.MaxEvents {
			panic(fmt.Sprintf("des: MaxEvents (%d) exceeded at t=%g", s.MaxEvents, s.now))
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
	s.cal.advanceTo(s.now)
	return s.fired - start
}

// peekTime returns the timestamp of the next uncancelled event, dropping
// cancelled entries it encounters at the front.
func (s *Simulator) peekTime() (Time, bool) {
	for {
		it, idx := s.cal.findMin()
		if it == nil {
			return 0, false
		}
		if it.cancelled {
			s.cal.removeMin(it, idx)
			s.release(it)
			continue
		}
		return it.at, true
	}
}

// NextEventTime exposes peekTime for callers that pace external work.
func (s *Simulator) NextEventTime() (Time, bool) { return s.peekTime() }

// Every schedules fn to run every interval time units, starting one
// interval from now, until the returned stop function is called or the
// simulator stops. It is the idiomatic way to express decision intervals
// and periodic sampling.
func (s *Simulator) Every(interval Time, fn func(sim *Simulator)) (stop func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("des: Every interval must be positive, got %g", interval))
	}
	stopped := false
	var schedule func()
	schedule = func() {
		s.AfterFunc(interval, func(sim *Simulator) {
			if stopped || sim.Stopped() {
				return
			}
			fn(sim)
			if !stopped && !sim.Stopped() {
				schedule()
			}
		})
	}
	schedule()
	return func() { stopped = true }
}
