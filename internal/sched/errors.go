package sched

import "fmt"

// InvariantError reports a violated internal invariant of a simulation
// run: tasks left behind after completion, a node queue that never
// drained, inconsistent metric records. An invariant violation means the
// engine or a policy is buggy — the run's output cannot be trusted — but
// it is deterministic: re-running the same spec reproduces it, so callers
// such as the rlsimd daemon can distinguish these model bugs from
// infrastructure faults (which are worth retrying) and fail just the
// offending job instead of crashing the process.
type InvariantError struct {
	// Policy names the policy that was running when the invariant fired.
	Policy string
	// Msg describes the violated invariant.
	Msg string
}

// Error implements the error interface.
func (e *InvariantError) Error() string {
	if e.Policy != "" {
		return fmt.Sprintf("sched: invariant violated (policy %s): %s", e.Policy, e.Msg)
	}
	return "sched: invariant violated: " + e.Msg
}

// invariantf raises an *InvariantError from deep inside the event loop.
// It panics so the violation propagates out of nested simulator callbacks
// without threading error returns through every event handler; Run
// recovers exactly this type and returns it as its error, so callers
// never observe the panic.
func (e *Engine) invariantf(format string, args ...any) {
	panic(&InvariantError{Policy: e.policy.Name(), Msg: fmt.Sprintf(format, args...)})
}
