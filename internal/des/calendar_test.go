package des

import (
	"container/heap"
	"math"
	"math/rand"
	"testing"
)

// refHeap is a minimal container/heap priority queue over (at, seq) —
// the structure the calendar queue replaced — used as the ordering
// oracle in the differential tests.
type refHeap []*refItem

type refItem struct {
	at        Time
	seq       uint64
	cancelled bool
}

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)     { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)       { *h = append(*h, x.(*refItem)) }
func (h *refHeap) Pop() any         { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h *refHeap) popMin() *refItem { return heap.Pop(h).(*refItem) }
func (h *refHeap) push(it *refItem) { heap.Push(h, it) }

// TestCalendarVsHeapDifferential drives a Simulator and a reference heap
// through the same randomized event sequence — bursty inserts, heavy
// same-timestamp ties, random cancellations, interleaved pops — and
// asserts the pop order is identical, including FIFO order at ties.
func TestCalendarVsHeapDifferential(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42, 1234} {
		seed := seed
		r := rand.New(rand.NewSource(seed))
		s := New()
		ref := &refHeap{}

		type scheduled struct {
			h  Handle
			ri *refItem
		}
		var live []scheduled
		var got, want []Time
		var gotSeq, wantSeq []uint64
		now := 0.0

		schedule := func(at Time) {
			ri := &refItem{at: at, seq: s.seq}
			h := s.AtFunc(at, func(sim *Simulator) {
				got = append(got, sim.Now())
				gotSeq = append(gotSeq, ri.seq)
			})
			ref.push(ri)
			live = append(live, scheduled{h, ri})
		}

		for round := 0; round < 200; round++ {
			// Insert a burst: mixture of spread-out, clustered and exactly
			// tied timestamps (ties exercise FIFO ordering).
			n := 1 + r.Intn(20)
			base := now + r.Float64()*50
			for i := 0; i < n; i++ {
				at := base
				switch r.Intn(3) {
				case 0:
					at = now + r.Float64()*200
				case 1:
					at = base + float64(r.Intn(3)) // exact ties
				}
				if at < now {
					at = now
				}
				schedule(at)
			}
			// Cancel a random subset of still-live events.
			for i := 0; i < len(live); i++ {
				if r.Intn(10) == 0 {
					sc := live[i]
					if s.Cancel(sc.h) {
						sc.ri.cancelled = true
					}
					live = append(live[:i], live[i+1:]...)
					i--
				}
			}
			// Pop a random number of events from both structures.
			pops := r.Intn(15)
			for i := 0; i < pops; i++ {
				var r1 *refItem
				for ref.Len() > 0 {
					it := ref.popMin()
					if !it.cancelled {
						r1 = it
						break
					}
				}
				if r1 == nil {
					if s.Step() {
						t.Fatalf("seed %d: simulator fired an event the reference heap did not have", seed)
					}
					break
				}
				want = append(want, r1.at)
				wantSeq = append(wantSeq, r1.seq)
				if !s.Step() {
					t.Fatalf("seed %d: simulator empty but reference heap has event at %g", seed, r1.at)
				}
				now = s.Now()
			}
		}
		// Drain both.
		for {
			var r1 *refItem
			for ref.Len() > 0 {
				it := ref.popMin()
				if !it.cancelled {
					r1 = it
					break
				}
			}
			if r1 == nil {
				break
			}
			want = append(want, r1.at)
			wantSeq = append(wantSeq, r1.seq)
			if !s.Step() {
				t.Fatalf("seed %d: simulator drained early", seed)
			}
		}
		if s.Step() {
			t.Fatalf("seed %d: simulator fired extra events after reference drained", seed)
		}

		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d events, reference expected %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] || gotSeq[i] != wantSeq[i] {
				t.Fatalf("seed %d: pop %d diverged: got (at=%g seq=%d), want (at=%g seq=%d)",
					seed, i, got[i], gotSeq[i], want[i], wantSeq[i])
			}
		}
	}
}

// TestCalendarSparseAndDense pushes the two width failure modes: events
// thousands of times denser than the initial bucket width, then events
// thousands of times sparser, asserting order both times.
func TestCalendarSparseAndDense(t *testing.T) {
	for _, scale := range []float64{1e-4, 1e-3, 1, 1e3, 1e6} {
		s := New()
		var got []Time
		var want []Time
		r := rand.New(rand.NewSource(99))
		now := 0.0
		for i := 0; i < 2000; i++ {
			at := now + r.Float64()*scale
			want = append(want, at)
			s.AtFunc(at, func(sim *Simulator) { got = append(got, sim.Now()) })
			if i%3 == 0 {
				s.Step()
				now = s.Now()
			}
		}
		for s.Step() {
		}
		if len(got) != len(want) {
			t.Fatalf("scale %g: fired %d of %d", scale, len(got), len(want))
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				t.Fatalf("scale %g: out-of-order pop at %d: %g after %g", scale, i, got[i], got[i-1])
			}
		}
	}
}

// TestCalendarFarFutureEvent checks that an event at an enormous (and an
// infinite) timestamp neither corrupts ordering nor overflows bucket
// arithmetic.
func TestCalendarFarFutureEvent(t *testing.T) {
	s := New()
	var got []Time
	rec := func(sim *Simulator) { got = append(got, sim.Now()) }
	s.AtFunc(1e300, rec)
	s.AtFunc(5, rec)
	s.AtFunc(math.Inf(1), rec)
	s.AtFunc(10, rec)
	for s.Step() {
	}
	wantOrder := []Time{5, 10, 1e300, math.Inf(1)}
	if len(got) != len(wantOrder) {
		t.Fatalf("fired %d events, want %d", len(got), len(wantOrder))
	}
	for i, at := range wantOrder {
		if got[i] != at {
			t.Fatalf("pop %d: got %g, want %g", i, got[i], at)
		}
	}
}

// TestCancelledReaping asserts the compaction satellite: cancelling the
// bulk of the queue reclaims the entries promptly (they must not linger
// until popped), while the survivors still fire in order.
func TestCancelledReaping(t *testing.T) {
	s := New()
	var handles []Handle
	var got []Time
	for i := 0; i < 1000; i++ {
		at := float64(i)
		handles = append(handles, s.AtFunc(at, func(sim *Simulator) { got = append(got, sim.Now()) }))
	}
	// Cancel all but every 100th event.
	for i, h := range handles {
		if i%100 != 0 {
			if !s.Cancel(h) {
				t.Fatalf("cancel %d failed", i)
			}
		}
	}
	if s.cal.cancelled > s.cal.live {
		t.Fatalf("reap did not run: %d cancelled vs %d live still stored", s.cal.cancelled, s.cal.live)
	}
	if got := s.Pending(); got != 10 {
		t.Fatalf("Pending() = %d, want 10", got)
	}
	for s.Step() {
	}
	if len(got) != 10 {
		t.Fatalf("fired %d events, want 10", len(got))
	}
	for i, at := range got {
		if at != float64(i*100) {
			t.Fatalf("pop %d at t=%g, want %g", i, at, float64(i*100))
		}
	}
}

// TestSteadyStateAllocationCeiling asserts the steady-state schedule/pop
// cycle is allocation-free: items come from the free list and buckets
// reuse their capacity, so a long simulation's event churn costs no GC
// pressure beyond warm-up.
func TestSteadyStateAllocationCeiling(t *testing.T) {
	s := New()
	r := rand.New(rand.NewSource(5))
	// Warm up: grow the free list, bucket capacities and calendar size to
	// their steady-state footprint.
	for i := 0; i < 4096; i++ {
		s.AfterFunc(r.Float64()*10, func(sim *Simulator) {})
		if i%2 == 1 {
			s.Step()
		}
	}
	for s.Step() {
	}

	allocs := testing.AllocsPerRun(2000, func() {
		// One steady-state cycle: a handful of schedules then pops, as the
		// engine does per task event.
		for i := 0; i < 8; i++ {
			s.AfterFunc(r.Float64()*10, func(sim *Simulator) {})
		}
		for i := 0; i < 8; i++ {
			s.Step()
		}
	})
	// The closure passed to AfterFunc escapes and costs one allocation per
	// schedule; the queue itself must add nothing on top. Allow a small
	// slack for rare resizes.
	if allocs > 9 {
		t.Fatalf("steady-state schedule/pop allocates %.1f objects per cycle, want <= 9 (1 per closure + slack)", allocs)
	}
}
