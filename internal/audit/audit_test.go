package audit

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"rlsched/internal/grouping"
	"rlsched/internal/memory"
)

func act(op int) memory.Action { return memory.Action{Opnum: op, Mode: grouping.ModeMixed} }

// TestReservoirBoundAndStride drives far more decisions than the bound
// and checks the reservoir stays at O(cap), keeps exact stride
// multiples, and bumps the epoch on every decimation.
func TestReservoirBoundAndStride(t *testing.T) {
	r := NewRecorder(Config{MaxDecisions: 16})
	const n = 1000
	for i := 0; i < n; i++ {
		r.Decision(float64(i), i%3, act(1+i%5), Note{Kind: KindExplore, Epsilon: 0.5})
	}
	log, epoch := r.Snapshot()
	if log.Total != n {
		t.Fatalf("Total = %d, want %d", log.Total, n)
	}
	if log.Retained >= 16 || log.Retained < 8 {
		t.Fatalf("Retained = %d, want in [8, 16)", log.Retained)
	}
	if epoch == 0 {
		t.Fatal("epoch never bumped despite decimation")
	}
	for i, d := range log.Decisions {
		if d.Seq != uint64(i)*log.Stride {
			t.Fatalf("decision %d has Seq %d, want %d (stride %d)", i, d.Seq, uint64(i)*log.Stride, log.Stride)
		}
	}
	if log.Kinds[KindExplore] != n {
		t.Fatalf("Kinds[explore] = %d, want %d", log.Kinds[KindExplore], n)
	}
	if log.ExplorationRatio != 1 {
		t.Fatalf("ExplorationRatio = %g, want 1", log.ExplorationRatio)
	}
}

// TestFeedbackAttribution checks a group's feedback lands on the
// decision that produced it and feeds the learning curves.
func TestFeedbackAttribution(t *testing.T) {
	r := NewRecorder(Config{})
	r.Decision(1, 7, act(4), Note{Kind: KindExploit, Epsilon: 0.3})
	r.Assigned(7, 100)
	r.Decision(2, 7, act(4), Note{Kind: KindKeep})
	r.Feedback(100, 5, 3, 0.8)
	log, _ := r.Snapshot()
	if len(log.Decisions) != 2 {
		t.Fatalf("retained %d decisions, want 2", len(log.Decisions))
	}
	d := log.Decisions[0]
	if !d.Fed || d.Reward != 3 || d.Error != 0.8 || d.FeedbackAt != 5 {
		t.Fatalf("feedback did not land on decision 0: %+v", d)
	}
	if log.Decisions[1].Fed {
		t.Fatalf("keep decision wrongly fed: %+v", log.Decisions[1])
	}
	if log.Fed != 1 {
		t.Fatalf("Fed = %d, want 1", log.Fed)
	}
	var sawReward, sawErr bool
	for _, c := range log.Curves {
		switch c.Name {
		case "reward":
			sawReward = len(c.Points) == 1 && c.Points[0].V == 3
		case "td_error":
			sawErr = len(c.Points) == 1 && c.Points[0].V == 0.8
		}
	}
	if !sawReward || !sawErr {
		t.Fatalf("reward/td_error curves missing or wrong: %+v", log.Curves)
	}
	// Feedback for an unknown group is ignored.
	r.Feedback(999, 6, 1, 1)
	if log2, _ := r.Snapshot(); log2.Fed != 1 {
		t.Fatalf("unknown group fed the log: Fed = %d", log2.Fed)
	}
}

// TestCurveDownsampling checks a learning curve stays bounded and keeps
// stride-mean semantics.
func TestCurveDownsampling(t *testing.T) {
	r := NewRecorder(Config{MaxPoints: 8})
	for i := 0; i < 100; i++ {
		r.Decision(float64(i), 0, act(1), Note{Kind: KindExplore, Epsilon: 1})
	}
	log, _ := r.Snapshot()
	for _, c := range log.Curves {
		if len(c.Points) > 8 {
			t.Fatalf("curve %s has %d points, want <= 8", c.Name, len(c.Points))
		}
		if c.Name == "epsilon" {
			for _, p := range c.Points {
				if p.V != 1 {
					t.Fatalf("epsilon curve point %v, want mean 1", p)
				}
			}
		}
	}
}

// TestUnannotatedDecisionIsPolicyKind pins the engine contract: an
// empty note records as KindPolicy.
func TestUnannotatedDecisionIsPolicyKind(t *testing.T) {
	r := NewRecorder(Config{})
	r.Decision(1, 0, act(2), Note{})
	log, _ := r.Snapshot()
	if log.Kinds[KindPolicy] != 1 || log.Decisions[0].Kind != KindPolicy {
		t.Fatalf("unannotated decision kinds = %v", log.Kinds)
	}
	if log.Decided != 0 || log.ExplorationRatio != 0 {
		t.Fatalf("policy decision counted as re-decision: %+v", log)
	}
}

// TestAgentKindOverflow checks per-agent metric counters fold agents
// beyond the bound into OverflowAgent instead of growing unboundedly.
func TestAgentKindOverflow(t *testing.T) {
	r := NewRecorder(Config{})
	for agent := 0; agent < maxKindAgents+10; agent++ {
		r.Decision(1, agent, act(1), Note{Kind: KindExploit})
	}
	counts := r.AgentKindCounts()
	if len(counts) > maxKindAgents+1 {
		t.Fatalf("per-agent counters grew to %d entries, want <= %d", len(counts), maxKindAgents+1)
	}
	if counts[OverflowAgent][KindExploit] != 10 {
		t.Fatalf("overflow bucket = %v, want 10 exploit", counts[OverflowAgent])
	}
}

// TestDecisionsCSVRoundTrip checks a representative export survives a
// write/read cycle exactly, including candidates and infinite errors.
func TestDecisionsCSVRoundTrip(t *testing.T) {
	runs := []RunLog{
		{Index: 0, Label: "adaptive-rl n=500 cv=0.5 seed=1", Log: Log{Decisions: []Decision{
			{
				Seq: 0, T: 1.5, Agent: 2, Kind: KindExplore,
				State:   memory.State{Load: 3.25, FreeSlots: 4, MeanPower: 72.5, SiteLoad: 13},
				Action:  memory.Action{Opnum: 4, Mode: grouping.ModeIdentical},
				Epsilon: 0.75,
				Candidates: []memory.Candidate{
					{AgentID: 1, Cycle: 3, Action: act(2), Similarity: 0.5, LVal: 2.5, Score: 1.25},
					{AgentID: 0, Cycle: 1, Action: act(5), Similarity: 0.25, LVal: 4, Score: 1},
				},
				Fed: true, Reward: 3, Error: math.Inf(1), FeedbackAt: 9.5,
			},
			{Seq: 4, T: 2.5, Agent: 0, Kind: KindKeep, Action: act(4)},
		}}},
		{Index: 1, Label: "greedy n=500, cv=0.5 \"q\"", Log: Log{Decisions: []Decision{
			{Seq: 0, T: 0.125, Agent: 1, Kind: KindPolicy, Action: act(1)},
		}}},
	}
	for i := range runs {
		runs[i].Retained = len(runs[i].Decisions)
	}
	var buf bytes.Buffer
	if err := WriteDecisionsCSV(&buf, runs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDecisionsCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reading back: %v\n%s", err, buf.String())
	}
	want := make([]RunLog, len(runs))
	for i, r := range runs {
		want[i] = RunLog{Index: r.Index, Label: r.Label}
		want[i].Decisions = r.Decisions
		want[i].Retained = r.Retained
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestCandidateBudget pins the capture-skip contract: the budget is
// TopK exactly when the next decision lands on the keep stride, so
// every retained decision could have captured candidates and no
// off-stride decision pays for a scan.
func TestCandidateBudget(t *testing.T) {
	r := NewRecorder(Config{MaxDecisions: 8, TopK: 5})
	for i := 0; i < 200; i++ {
		want := 0
		if uint64(i)%r.stride == 0 {
			want = 5
		}
		if got := r.CandidateBudget(); got != want {
			t.Fatalf("decision %d (stride %d): CandidateBudget = %d, want %d", i, r.stride, got, want)
		}
		note := Note{Kind: KindExploit}
		if want > 0 {
			note.Candidates = []memory.Candidate{{AgentID: 1, Action: act(1), Score: 1}}
		}
		r.Decision(float64(i), 0, act(1), note)
	}
	log, _ := r.Snapshot()
	for _, d := range log.Decisions {
		if len(d.Candidates) == 0 {
			t.Fatalf("retained decision %d captured no candidates despite on-stride budget", d.Seq)
		}
	}
}

// TestSnapshotIsolation checks a snapshot is a deep copy: recording
// after Snapshot must not mutate the returned log.
func TestSnapshotIsolation(t *testing.T) {
	r := NewRecorder(Config{})
	r.Decision(1, 0, act(1), Note{Kind: KindExplore, Epsilon: 1})
	log, _ := r.Snapshot()
	before := len(log.Decisions)
	pts := len(log.Curves[0].Points)
	for i := 0; i < 50; i++ {
		r.Decision(float64(i+2), 0, act(1), Note{Kind: KindExplore, Epsilon: 1})
	}
	if len(log.Decisions) != before || len(log.Curves[0].Points) != pts {
		t.Fatal("snapshot aliases live recorder state")
	}
}
