// Command experiments regenerates the paper's evaluation figures (7-12).
//
// Usage:
//
//	experiments [-fig 7|8|9|10|11|12|all] [-reps N] [-seed S]
//	            [-period T] [-sizescale F] [-workers W] [-csv] [-chart]
//
// Each figure prints as an aligned table (default), optionally with an
// ASCII chart and CSV.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rlsched/internal/config"
	"rlsched/internal/experiments"
	"rlsched/internal/report"
)

func main() {
	figID := flag.String("fig", "all", "figure to regenerate: 7..12, E1, E2, ext, or all")
	reps := flag.Int("reps", 0, "replications per point (0 = profile default)")
	seed := flag.Uint64("seed", 0, "base seed (0 = profile default)")
	period := flag.Float64("period", 0, "observation period override (time units)")
	sizeScale := flag.Float64("sizescale", 0, "task-size scale override")
	csv := flag.Bool("csv", false, "also print CSV")
	chart := flag.Bool("chart", false, "also print an ASCII chart")
	md := flag.Bool("md", false, "print as a markdown table instead of aligned text")
	ablations := flag.Bool("ablations", false, "run the design-choice ablation table instead of figures")
	outDir := flag.String("out", "", "directory to write one CSV per figure")
	configPath := flag.String("config", "", "profile JSON (default: built-in profile)")
	workers := flag.Int("workers", 0, "simulation points run concurrently (0 = one per CPU, 1 = serial)")
	flag.Parse()

	profile := experiments.DefaultProfile()
	if *configPath != "" {
		f, err := config.Load(*configPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		profile = f.Profile
	}
	if *reps > 0 {
		profile.Replications = *reps
	}
	if *seed > 0 {
		profile.Seed = *seed
	}
	if *period > 0 {
		profile.ObservationPeriod = *period
	}
	if *sizeScale > 0 {
		profile.SizeScale = *sizeScale
	}
	if *workers > 0 {
		profile.Workers = *workers
	}

	if *ablations {
		start := time.Now()
		results, err := experiments.RunAblations(profile, experiments.DefaultAblationArms())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(report.AblationTable(results))
		fmt.Printf("(ablations run in %v)\n", time.Since(start).Round(time.Millisecond))
		return
	}

	ids := experiments.AllFigureIDs
	switch *figID {
	case "all":
	case "ext":
		ids = experiments.ExtensionFigureIDs
	default:
		ids = []string{*figID}
	}
	for _, id := range ids {
		start := time.Now()
		fig, err := experiments.FigureByID(profile, id)
		if err != nil {
			fig, err = experiments.ExtensionFigureByID(profile, id)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if *md {
			fmt.Print(report.Markdown(fig))
		} else {
			fmt.Print(report.Table(fig))
		}
		if *chart {
			fmt.Print(report.Chart(fig, 72, 18))
		}
		if *csv {
			fmt.Print(report.CSV(fig))
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, fig.ID+".csv")
			if err := os.WriteFile(path, []byte(report.CSV(fig)), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("(wrote %s)\n", path)
		}
		fmt.Printf("(%s regenerated in %v)\n\n", fig.ID, time.Since(start).Round(time.Millisecond))
	}
}
