// Package cache is a content-addressed result store for deterministic
// simulation points. Every rlsim run derives all of its randomness from
// its RunSpec and profile alone, so a point's result is a pure function
// of (engine version, profile, spec): hashing a canonical encoding of
// those three yields a stable address under which the result can be
// stored once and served forever. The store layers a bounded in-memory
// LRU over an fsynced on-disk spool sharded by hash prefix; a corrupted
// or tampered entry is detected on load and treated as a miss, so the
// worst case is always a deterministic re-run, never a wrong answer.
package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// EngineVersion names the simulation engine's deterministic-output
// contract and is folded into every cache key. Bump it whenever an
// engine change alters any result bit-for-bit — old entries then simply
// stop matching, which is the deliberate cache-flush mechanism. Never
// reuse a retired value.
const EngineVersion = "rlsched-v1"

// KeyPrefix starts every cache key; the rest is lowercase hex SHA-256.
const KeyPrefix = "sha256:"

// CanonicalJSON encodes v as canonical JSON: object keys sorted, no
// insignificant whitespace, numbers kept as their literal decimal text
// (a uint64 seed survives untouched — no float64 round-trip). Two values
// whose json.Marshal outputs are equal always canonicalise identically,
// so the encoding is stable across processes and Go versions.
func CanonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("cache: encoding value: %w", err)
	}
	// Round-trip through interface{} maps: json.Marshal sorts map keys,
	// and UseNumber preserves numeric literals exactly.
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return nil, fmt.Errorf("cache: canonicalising value: %w", err)
	}
	out, err := json.Marshal(tree)
	if err != nil {
		return nil, fmt.Errorf("cache: canonicalising value: %w", err)
	}
	return out, nil
}

// keyEnvelope is the hashed document: the engine version plus the
// identifying parts. Field names are part of the frozen hash format.
type keyEnvelope struct {
	Engine  string `json:"engine"`
	Profile any    `json:"profile,omitempty"`
	Spec    any    `json:"spec"`
}

func hashEnvelope(env keyEnvelope) (string, error) {
	canon, err := CanonicalJSON(env)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canon)
	return KeyPrefix + hex.EncodeToString(sum[:]), nil
}

// SpecHash returns the canonical content address of one simulation point
// spec under the current EngineVersion: "sha256:" plus 64 lowercase hex
// digits of SHA-256 over the canonical JSON of
// {"engine": EngineVersion, "spec": <canonical spec>}. The format is
// frozen by a golden-value test; any change to it — or to what a spec
// means — must come with a deliberate EngineVersion bump.
//
// spec must be JSON-marshallable (experiments.RunSpec always is); an
// unmarshallable value yields the empty string.
func SpecHash(spec any) string {
	key, err := hashEnvelope(keyEnvelope{Engine: EngineVersion, Spec: spec})
	if err != nil {
		return ""
	}
	return key
}

// PointKey returns the full content address of one simulation point:
// SHA-256 over the canonical JSON of
// {"engine": EngineVersion, "profile": <canonical profile>, "spec":
// <canonical spec>}. The profile half must contain exactly the fields
// the point's result depends on — the caller scrubs campaign-shape
// knobs (replication counts, worker counts, progress hooks) so that
// re-running the same point under a differently parallelised campaign
// still hits.
func PointKey(profile, spec any) (string, error) {
	return hashEnvelope(keyEnvelope{Engine: EngineVersion, Profile: profile, Spec: spec})
}
