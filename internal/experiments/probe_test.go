package experiments

import (
	"sync"
	"testing"

	"rlsched/internal/probe"
)

func TestPointLabel(t *testing.T) {
	s := RunSpec{Policy: AdaptiveRL, NumTasks: 1500, HeterogeneityCV: 0.5, Seed: 3}
	if got, want := PointLabel(s), "adaptive-rl n=1500 cv=0.5 seed=3"; got != want {
		t.Fatalf("PointLabel = %q, want %q", got, want)
	}
	// The zero CV formats without a trailing decimal — labels are stable
	// strings, shared between the CLI export and the daemon.
	s = RunSpec{Policy: Greedy, NumTasks: 80}
	if got, want := PointLabel(s), "greedy n=80 cv=0 seed=0"; got != want {
		t.Fatalf("PointLabel = %q, want %q", got, want)
	}
}

// TestProbeForPerPoint checks the campaign runner calls the hook once
// per point with that point's index and spec, and wires the returned
// recorder into the engine (series get recorded).
func TestProbeForPerPoint(t *testing.T) {
	p := fastProfile()
	p.Workers = 4
	specs := []RunSpec{
		{Policy: Greedy, NumTasks: 60, Seed: 1},
		{Policy: Greedy, NumTasks: 60, Seed: 2},
		{Policy: Greedy, NumTasks: 60, Seed: 3},
	}
	var mu sync.Mutex
	recs := map[int]*probe.Recorder{}
	seen := map[int]RunSpec{}
	p.ProbeFor = func(i int, spec RunSpec) *probe.Recorder {
		rec := probe.NewRecorder(probe.Config{Cadence: 50})
		mu.Lock()
		recs[i], seen[i] = rec, spec
		mu.Unlock()
		return rec
	}
	if _, err := RunMany(p, specs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(specs) {
		t.Fatalf("ProbeFor called for %d points, want %d", len(recs), len(specs))
	}
	for i, spec := range specs {
		if seen[i] != spec {
			t.Errorf("point %d: hook saw spec %+v, want %+v", i, seen[i], spec)
		}
		series, _ := recs[i].Snapshot()
		if len(series) == 0 {
			t.Errorf("point %d: recorder captured no series", i)
		}
	}
}

// TestProbeForNilKeepsResults guards the zero-cost contract at the
// campaign layer: a profile without the hook runs exactly as before.
func TestProbeForNilKeepsResults(t *testing.T) {
	p := fastProfile()
	specs := []RunSpec{{Policy: Greedy, NumTasks: 60, Seed: 1}}
	plain, err := RunMany(p, specs)
	if err != nil {
		t.Fatal(err)
	}
	p.ProbeFor = func(int, RunSpec) *probe.Recorder {
		return probe.NewRecorder(probe.Config{Cadence: 50})
	}
	probed, err := RunMany(p, specs)
	if err != nil {
		t.Fatal(err)
	}
	if probed[0].AveRT != plain[0].AveRT || probed[0].ECS != plain[0].ECS ||
		probed[0].EndTime != plain[0].EndTime {
		t.Fatalf("probe hook changed campaign results: %+v vs %+v", probed[0], plain[0])
	}
}
