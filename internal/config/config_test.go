package config

import (
	"path/filepath"
	"strings"
	"testing"

	"rlsched/internal/experiments"
)

func TestRoundTrip(t *testing.T) {
	f := Default()
	f.Profile.SizeScale = 3.21
	f.Profile.Replications = 7
	f.Profile.Platform.Sites = 9
	data, err := Marshal(f)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Profile.SizeScale != 3.21 || got.Profile.Replications != 7 || got.Profile.Platform.Sites != 9 {
		t.Fatalf("round trip lost fields: %+v", got.Profile)
	}
}

func TestUnmarshalDefaultsForOmittedFields(t *testing.T) {
	got, err := Unmarshal([]byte(`{"profile": {"SizeScale": 2.5}}`))
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	def := experiments.DefaultProfile()
	if got.Profile.SizeScale != 2.5 {
		t.Fatalf("override lost: %g", got.Profile.SizeScale)
	}
	if got.Profile.ObservationPeriod != def.ObservationPeriod {
		t.Fatalf("default not preserved: %g", got.Profile.ObservationPeriod)
	}
	if got.Profile.Platform.Sites != def.Platform.Sites {
		t.Fatal("nested defaults not preserved")
	}
}

func TestUnmarshalRejectsUnknownFields(t *testing.T) {
	if _, err := Unmarshal([]byte(`{"profile": {"SizeScle": 2.5}}`)); err == nil {
		t.Fatal("expected error for unknown field")
	}
}

func TestUnmarshalRejectsInvalidProfile(t *testing.T) {
	if _, err := Unmarshal([]byte(`{"profile": {"SizeScale": -1}}`)); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte(`{not json`)); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestMarshalRejectsInvalidProfile(t *testing.T) {
	f := Default()
	f.Profile.Replications = 0
	if _, err := Marshal(f); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profile.json")
	f := Default()
	f.Description = "test campaign"
	f.Profile.Seed = 99
	if err := Save(path, f); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Description != "test campaign" || got.Profile.Seed != 99 {
		t.Fatalf("Load round trip: %+v", got)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestMarshalIsHumanReadable(t *testing.T) {
	data, err := Marshal(Default())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, "\n  ") {
		t.Fatal("output not indented")
	}
	if !strings.HasSuffix(s, "\n") {
		t.Fatal("output not newline-terminated")
	}
	// The tracer must never leak into the schema.
	if strings.Contains(s, "Tracer") {
		t.Fatal("runtime-only Tracer field serialised")
	}
}
