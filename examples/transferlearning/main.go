// Transferlearning: reuse one trained Adaptive-RL policy across a week of
// daily workloads (the PreserveLearning extension). The paper observes
// that "the amount of time taken for learning reduces as the system
// evolves" (§IV.B) but evaluates fresh agents per run; here the same
// policy instance keeps its networks, shared memory and exploration decay
// from day to day, against a control that starts cold every day.
package main

import (
	"fmt"
	"log"

	"rlsched"
)

func main() {
	profile := rlsched.DefaultProfile()

	transferCfg := rlsched.DefaultAdaptiveRLConfig()
	transferCfg.PreserveLearning = true
	transferred, err := rlsched.NewAdaptiveRLPolicy(transferCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("7 daily workloads (2000 tasks each); same policy instance vs cold start:")
	fmt.Printf("%-6s %-22s %-22s\n", "", "transferred", "cold start")
	fmt.Printf("%-6s %-10s %-11s %-10s %-11s\n", "day", "AveRT", "success", "AveRT", "success")

	var transferredTotal, coldTotal float64
	for day := 1; day <= 7; day++ {
		spec := rlsched.RunSpec{
			Policy:   rlsched.AdaptiveRL,
			NumTasks: 2000,
			Seed:     uint64(100 + day), // a different workload every day
		}
		warm, err := rlsched.RunWith(profile, spec, transferred)
		if err != nil {
			log.Fatal(err)
		}
		coldPolicy, err := rlsched.NewPolicy(rlsched.AdaptiveRL)
		if err != nil {
			log.Fatal(err)
		}
		cold, err := rlsched.RunWith(profile, spec, coldPolicy)
		if err != nil {
			log.Fatal(err)
		}
		transferredTotal += warm.AveRT
		coldTotal += cold.AveRT
		fmt.Printf("%-6d %-10.1f %-11.3f %-10.1f %-11.3f\n",
			day, warm.AveRT, warm.SuccessRate, cold.AveRT, cold.SuccessRate)
	}
	fmt.Printf("\nmean AveRT over the week: transferred %.1f vs cold %.1f\n",
		transferredTotal/7, coldTotal/7)
	fmt.Println("after day 1 the transferred policy skips most of its exploration phase.")
}
