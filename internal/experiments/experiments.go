// Package experiments defines the paper's evaluation (§V) as runnable
// experiment specifications: one constructor per figure (7-12), each
// returning the same series the paper plots.
//
// Scaling note (documented in EXPERIMENTS.md): the paper's stated
// parameters are internally inconsistent — a platform of 25-200 multi-
// processor nodes cannot reach 60-90% utilisation (Figures 9/10) from a
// single Poisson stream with a 5-time-unit inter-arrival mean, nor can
// response times rise 7x between 500 and 3000 tasks (Figure 7) unless the
// task count varies within a fixed observation period (which is exactly
// how Experiment 2 defines lightly/heavily loaded states: "the number of
// incoming tasks during a particular period of time"). The default profile
// therefore fixes the observation period so that N=500 reproduces the
// stated 5-unit inter-arrival mean, scales task sizes so that N=3000
// saturates the platform at ~90% offered load, and sizes the platform at
// the small end of the paper's ranges. All knobs are explicit in Profile.
package experiments

import (
	"context"
	"fmt"
	"log/slog"
	"runtime/debug"

	"rlsched/internal/audit"
	"rlsched/internal/baselines/cooperative"
	"rlsched/internal/baselines/onlinerl"
	"rlsched/internal/baselines/predictive"
	"rlsched/internal/baselines/qplus"
	"rlsched/internal/core"
	"rlsched/internal/obs"
	"rlsched/internal/platform"
	"rlsched/internal/probe"
	"rlsched/internal/rng"
	"rlsched/internal/sched"
	"rlsched/internal/workload"
)

// PolicyName identifies one of the four learning approaches of
// Experiment 1.
type PolicyName string

// The four policies compared in §V.B.
const (
	AdaptiveRL PolicyName = "adaptive-rl"
	OnlineRL   PolicyName = "online-rl"
	QPlus      PolicyName = "q+-learning"
	Predictive PolicyName = "prediction-based"
	// Greedy is the non-learning reference policy (not part of the
	// paper's comparison; used by ablation benches).
	Greedy PolicyName = "greedy"
	// RoundRobin and Random are naive lower-bound references.
	RoundRobin PolicyName = "round-robin"
	Random     PolicyName = "random"
	// Cooperative is the game-theoretic strategy the paper's related work
	// cites ([19]); an extension to the comparison set.
	Cooperative PolicyName = "cooperative-game"
)

// AllPolicies lists the Experiment-1 comparison set in the paper's order.
var AllPolicies = []PolicyName{AdaptiveRL, OnlineRL, QPlus, Predictive}

// NewPolicy constructs a fresh policy instance by name.
func NewPolicy(name PolicyName) (sched.Policy, error) {
	switch name {
	case AdaptiveRL:
		return core.NewDefault(), nil
	case Greedy:
		return sched.NewGreedy(), nil
	case RoundRobin:
		return sched.NewRoundRobin(), nil
	case Random:
		return sched.NewRandom(), nil
	case Cooperative:
		return cooperative.NewDefault(), nil
	case OnlineRL:
		return onlinerl.NewDefault(), nil
	case QPlus:
		return qplus.NewDefault(), nil
	case Predictive:
		return predictive.NewDefault(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown policy %q", name)
	}
}

// Profile bundles every knob of an experiment campaign.
type Profile struct {
	// Platform is the generator configuration (§V.A ranges).
	Platform platform.GenConfig
	// ObservationPeriod is the arrival span in time units. The mean
	// inter-arrival time for N tasks is ObservationPeriod / N, so N=500
	// yields the paper's stated mean of 5 and larger N raises the load
	// (§V.B Experiment 2's definition of lightly/heavily loaded).
	ObservationPeriod float64
	// SizeScale multiplies the §V.A task-size range [600, 7200] MI so the
	// stated workload saturates the scaled platform at the heavy end.
	SizeScale float64
	// Mix sets the priority probabilities (§V.A: varied per experiment).
	Mix workload.PriorityMix
	// Engine is the scheduling-framework configuration.
	Engine sched.Config
	// Replications averages each point over this many seeds.
	Replications int
	// Seed is the base seed; replication k uses Seed+k.
	Seed uint64
	// LightTasks and HeavyTasks define the Experiment 2/3 load states.
	LightTasks, HeavyTasks int
	// Workers bounds the number of simulation points run concurrently by
	// figure sweeps and RunMany: 0 (the default) uses one worker per
	// available CPU, 1 runs the exact serial path. Every point derives its
	// randomness purely from its RunSpec, so results are bit-identical at
	// any worker count; only wall-clock time changes.
	Workers int
	// Progress, when non-nil, is invoked once after every completed
	// simulation point (replications included) by RunMany and the figure
	// sweeps. It is called from worker goroutines concurrently, so it must
	// be safe for concurrent use and cheap — it sits on the campaign hot
	// path. Runtime-only: never serialised, never affects results.
	Progress func() `json:"-"`
	// Metrics, when non-nil, receives campaign telemetry: RunManyCtx
	// records each completed point's wall-clock duration into a
	// point_run_seconds histogram. Like Progress it is runtime-only and
	// never affects results; a nil registry costs nothing (not even a
	// clock read).
	Metrics *obs.Registry `json:"-"`
	// Logger, when non-nil, receives a warning for every point whose
	// wall-clock duration exceeds SlowPointSec. Runtime-only.
	Logger *slog.Logger `json:"-"`
	// SlowPointSec is the slow-point warning threshold in seconds; 0 (the
	// default) disables the warnings.
	SlowPointSec float64
	// RunPoints, when non-nil, replaces the local point executor:
	// RunManyCtx hands it the whole expanded spec list and returns
	// whatever it returns, instead of fanning the points over local
	// worker goroutines. The rlsimd daemon uses it to route campaign
	// points through its content-addressed result cache and, in cluster
	// mode, across peer workers. Implementations must honour the local
	// contract: results in spec order, bit-identical to a local run (the
	// spec carries all randomness), lowest-index error on failure, and
	// the profile's Progress hook invoked once per completed point.
	//
	// The hook is bypassed — the campaign runs locally — whenever the
	// profile carries in-process instrumentation that cannot follow a
	// point to another machine: a ProbeFor hook, an Engine.Probe
	// recorder, or an Engine.Tracer. Runtime-only, never serialised.
	RunPoints func(ctx context.Context, p Profile, specs []RunSpec) ([]sched.Result, error) `json:"-"`
	// ProbeFor, when non-nil, supplies a per-point probe recorder:
	// RunManyCtx (and everything built on it — figures, sweeps, the
	// daemon) calls it once per simulation point with the point's index
	// in the expanded spec list and its spec, and attaches the returned
	// recorder to that point's engine. Return nil to leave a point
	// unprobed. It is called from worker goroutines concurrently.
	// Runtime-only, like Progress: a nil hook costs nothing and sampling
	// never affects results.
	ProbeFor func(index int, spec RunSpec) *probe.Recorder `json:"-"`
	// AuditFor, when non-nil, supplies a per-point decision-audit recorder,
	// with exactly the ProbeFor contract: called once per simulation point
	// with the point's index and spec, from worker goroutines concurrently;
	// return nil to leave a point unaudited. Runtime-only. Like ProbeFor,
	// its presence forces the campaign to run locally — a recorder cannot
	// follow a point to another machine or be fed from the result cache.
	AuditFor func(index int, spec RunSpec) *audit.Recorder `json:"-"`
	// PointSpan, when non-nil, brackets every locally executed simulation
	// point: RunManyCtx calls it just before point i runs with the
	// point's index in the expanded spec list and its spec, and calls the
	// returned function with the run's error once the point finishes. The
	// rlsimd daemon uses it to time each local run into a job's span
	// trace (as engine.run or local.fallback spans). Called from worker
	// goroutines concurrently, so implementations must be safe for
	// concurrent use. Runtime-only, never serialised, never affects
	// results; a nil hook costs one nil check.
	PointSpan func(index int, spec RunSpec) func(err error) `json:"-"`
}

// DefaultProfile returns the tuned defaults used for every figure.
func DefaultProfile() Profile {
	pcfg := platform.DefaultGenConfig()
	pcfg.Sites = 5
	pcfg.MinNodesPerSite, pcfg.MaxNodesPerSite = 2, 2
	// §III.C defines exactly two power levels (p_max busy, p_min idle at
	// ~50% of peak); there is no deep-sleep level in the paper's model.
	// The sleep state the Q+ baseline drives is therefore configured just
	// below idle (a C1-style halt), so its decisions play out inside the
	// paper's energy model rather than inventing a third level.
	pcfg.SleepPowerW = 40
	return Profile{
		Platform:          pcfg,
		ObservationPeriod: 2500,
		SizeScale:         5.6,
		Mix:               workload.DefaultMix(),
		Engine:            sched.DefaultConfig(),
		Replications:      3,
		Seed:              1,
		LightTasks:        500,
		HeavyTasks:        3000,
	}
}

// Validate checks the profile.
func (p Profile) Validate() error {
	if err := p.Platform.Validate(); err != nil {
		return err
	}
	if err := p.Engine.Validate(); err != nil {
		return err
	}
	switch {
	case p.ObservationPeriod <= 0:
		return fmt.Errorf("experiments: ObservationPeriod must be positive, got %g", p.ObservationPeriod)
	case p.SizeScale <= 0:
		return fmt.Errorf("experiments: SizeScale must be positive, got %g", p.SizeScale)
	case p.Replications < 1:
		return fmt.Errorf("experiments: Replications must be >= 1, got %d", p.Replications)
	case p.LightTasks < 1 || p.HeavyTasks < p.LightTasks:
		return fmt.Errorf("experiments: invalid light/heavy task counts %d/%d", p.LightTasks, p.HeavyTasks)
	case p.Workers < 0:
		return fmt.Errorf("experiments: Workers must be >= 0, got %d", p.Workers)
	case p.SlowPointSec < 0:
		return fmt.Errorf("experiments: SlowPointSec must be >= 0, got %g", p.SlowPointSec)
	}
	return p.Mix.Validate()
}

// RunSpec is a single simulation point.
type RunSpec struct {
	Policy PolicyName
	// NumTasks is N.
	NumTasks int
	// HeterogeneityCV, when positive, overrides the platform's speed
	// distribution (Experiment 3).
	HeterogeneityCV float64
	// Seed for this replication.
	Seed uint64
}

// PointLabel renders the canonical human-readable identity of one
// simulation point. The daemon's series endpoints and the CLIs' series
// exports all label recorded runs with it, so the same point carries
// the same label everywhere.
func PointLabel(s RunSpec) string {
	return fmt.Sprintf("%s n=%d cv=%g seed=%d", s.Policy, s.NumTasks, s.HeterogeneityCV, s.Seed)
}

// Build constructs the platform and workload for one simulation point
// without running it, so callers can inspect or reuse the scenario (e.g.
// to run a custom policy on it via RunWith).
func Build(p Profile, spec RunSpec) (*platform.Platform, []*workload.Task, error) {
	pl, tasks, _, err := buildScenario(p, spec, workload.Generate)
	return pl, tasks, err
}

// workloadGen produces the task list for one scenario; it exists so the
// bursty extension can reuse buildScenario with a different generator.
type workloadGen func(workload.GenConfig, *rng.Stream) ([]*workload.Task, error)

// buildScenario constructs the platform and workload for one simulation
// point and returns the scenario stream positioned just past the
// "platform" and "workload" splits, so a caller's next split (e.g.
// "engine") continues the exact deterministic draw sequence — rather than
// re-deriving a second stream and replaying the splits by hand.
func buildScenario(p Profile, spec RunSpec, gen workloadGen) (*platform.Platform, []*workload.Task, *rng.Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if spec.NumTasks < 1 {
		return nil, nil, nil, fmt.Errorf("experiments: NumTasks must be >= 1, got %d", spec.NumTasks)
	}
	r := scenarioStream(spec)
	pcfg := p.Platform
	pcfg.HeterogeneityCV = spec.HeterogeneityCV
	pl, err := platform.Generate(pcfg, r.Split("platform"))
	if err != nil {
		return nil, nil, nil, err
	}
	// Deadlines reference the referred slowest resource (§III.A), which
	// the heterogeneity model pins at the platform's configured minimum
	// speed, so deadline tightness is comparable across the Experiment 3
	// sweep. Task sizes scale with the heterogeneous platform's mean
	// speed so the offered load stays constant across the sweep as well —
	// otherwise capacity growth, not heterogeneity, would dominate the
	// trend.
	loadScale := p.SizeScale * pcfg.MeanSpeed() / p.Platform.MeanSpeed()
	wcfg := workload.GenConfig{
		NumTasks:         spec.NumTasks,
		MeanInterArrival: p.ObservationPeriod / float64(spec.NumTasks),
		MinSizeMI:        600 * loadScale,
		MaxSizeMI:        7200 * loadScale,
		SlowestSpeedMIPS: p.Platform.MinSpeedMIPS,
		Mix:              p.Mix,
	}
	tasks, err := gen(wcfg, r.Split("workload"))
	if err != nil {
		return nil, nil, nil, err
	}
	return pl, tasks, r, nil
}

// scenarioStream derives the deterministic stream for a run point.
func scenarioStream(spec RunSpec) *rng.Stream {
	return rng.NewStream(spec.Seed, fmt.Sprintf("%s-n%d-cv%g", spec.Policy, spec.NumTasks, spec.HeterogeneityCV))
}

// RunWith executes one simulation point with a caller-supplied policy
// instance (which must be fresh: policies carry learned state).
func RunWith(p Profile, spec RunSpec, policy sched.Policy) (sched.Result, error) {
	return runScenario(p, spec, policy, workload.Generate)
}

// runScenario builds a scenario with gen and runs it under policy, using
// the single stream buildScenario hands back for the engine split. A
// panic escaping the engine or the policy (the engine already converts
// its own invariant violations into a returned *InvariantError) is
// recovered into a *PointError so one corrupted point fails its caller,
// never the process.
func runScenario(p Profile, spec RunSpec, policy sched.Policy, gen workloadGen) (res sched.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = sched.Result{}, &PointError{Point: spec, Index: -1, Panic: r, Stack: string(debug.Stack())}
		}
	}()
	pl, tasks, r, err := buildScenario(p, spec, gen)
	if err != nil {
		return sched.Result{}, err
	}
	// The campaign runner resolves ProbeFor/AuditFor per point (it knows
	// the index); a direct single-point Run resolves them here as point 0.
	// The nil guards keep the two paths from double-invoking the hooks.
	if p.ProbeFor != nil && p.Engine.Probe == nil {
		p.Engine.Probe = p.ProbeFor(0, spec)
	}
	if p.AuditFor != nil && p.Engine.Audit == nil {
		p.Engine.Audit = p.AuditFor(0, spec)
	}
	eng, err := sched.New(p.Engine, pl, tasks, policy, r.Split("engine"))
	if err != nil {
		return sched.Result{}, err
	}
	return eng.Run()
}

// Run executes one simulation point under the profile.
func Run(p Profile, spec RunSpec) (sched.Result, error) {
	policy, err := NewPolicy(spec.Policy)
	if err != nil {
		return sched.Result{}, err
	}
	return RunWith(p, spec, policy)
}

// MustRun is Run that panics on error.
func MustRun(p Profile, spec RunSpec) sched.Result {
	res, err := Run(p, spec)
	if err != nil {
		panic(err)
	}
	return res
}

// PointStat aggregates one metric over the profile's replications.
type PointStat struct {
	Mean, CI95 float64
	N          int
}

// runReplications executes the spec across seeds (in parallel, per the
// profile's worker count) and reduces each result through extract.
func runReplications(ctx context.Context, p Profile, spec RunSpec, extract func(sched.Result) float64) (PointStat, error) {
	results, err := RunManyCtx(ctx, p, replicate(p, []RunSpec{spec}))
	if err != nil {
		return PointStat{}, err
	}
	return pointStats(p, results, extract)[0], nil
}

// seriesReplications averages a per-run series (e.g. utilisation by cycle
// decile) element-wise over replications.
func seriesReplications(ctx context.Context, p Profile, spec RunSpec, extract func(sched.Result) []float64) ([]float64, error) {
	results, err := RunManyCtx(ctx, p, replicate(p, []RunSpec{spec}))
	if err != nil {
		return nil, err
	}
	return pointSeries(p, results, extract)[0], nil
}
