package main

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"rlsched/internal/obs"
)

// bootDaemon boots the daemon on an ephemeral port with the given extra
// flags and returns its address plus a stop function that asserts a
// clean exit.
func bootDaemon(t *testing.T, extra ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &lockedBuffer{}
	errOut := &lockedBuffer{}
	codeCh := make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-grace", "5s"}, extra...)
	go func() { codeCh <- run(ctx, args, out, errOut) }()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never announced its address; stdout=%q stderr=%q", out.String(), errOut.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "rlsimd listening on "); ok {
				addr = strings.TrimSpace(rest)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return addr, func() {
		cancel()
		select {
		case code := <-codeCh:
			if code != 0 {
				t.Fatalf("exit code = %d, want 0; stderr=%q", code, errOut.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not stop after cancel")
		}
	}
}

// TestMetricsSmoke is the scrape smoke check CI runs against a real
// daemon process path: boot rlsimd, fetch /metrics over TCP, and
// validate the exposition with the obs parser — format, content type and
// the presence of the daemon's core series including build_info.
func TestMetricsSmoke(t *testing.T) {
	addr, stop := bootDaemon(t)
	defer stop()

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scraping /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("/metrics Content-Type = %q, want %q", ct, obs.ContentType)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	names := make(map[string]bool, len(samples))
	for _, s := range samples {
		names[s.Name] = true
	}
	for _, want := range []string{
		"build_info", "jobs_queued", "jobs_running", "jobs_total",
		"queue_depth", "worker_utilization", "go_goroutines",
		"job_queue_wait_seconds_bucket", "job_run_seconds_bucket",
	} {
		if !names[want] {
			t.Fatalf("scrape missing %s:\n%s", want, buf.String())
		}
	}
}

// TestPprofFlag checks -pprof mounts the profiling mux on the daemon.
func TestPprofFlag(t *testing.T) {
	addr, stop := bootDaemon(t, "-pprof")
	defer stop()
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/: HTTP %d, want 200", resp.StatusCode)
	}
}

// TestPprofDisabled pins the default-off contract: without -pprof the
// profiling mux must not be reachable on the daemon port.
func TestPprofDisabled(t *testing.T) {
	addr, stop := bootDaemon(t)
	defer stop()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s without -pprof: HTTP %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestVersionFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-version"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr=%q", code, errOut.String())
	}
	if !strings.HasPrefix(out.String(), "rlsimd ") || !strings.Contains(out.String(), "go1") {
		t.Fatalf("version output: %q", out.String())
	}
}

func TestBadLogLevel(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-log-level", "loud"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown log level") {
		t.Fatalf("stderr: %q", errOut.String())
	}
}
