package config

import (
	"path/filepath"
	"strings"
	"testing"

	"rlsched/internal/experiments"
)

func TestRoundTrip(t *testing.T) {
	f := Default()
	f.Profile.SizeScale = 3.21
	f.Profile.Replications = 7
	f.Profile.Platform.Sites = 9
	data, err := Marshal(f)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Profile.SizeScale != 3.21 || got.Profile.Replications != 7 || got.Profile.Platform.Sites != 9 {
		t.Fatalf("round trip lost fields: %+v", got.Profile)
	}
}

func TestUnmarshalDefaultsForOmittedFields(t *testing.T) {
	got, err := Unmarshal([]byte(`{"profile": {"SizeScale": 2.5}}`))
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	def := experiments.DefaultProfile()
	if got.Profile.SizeScale != 2.5 {
		t.Fatalf("override lost: %g", got.Profile.SizeScale)
	}
	if got.Profile.ObservationPeriod != def.ObservationPeriod {
		t.Fatalf("default not preserved: %g", got.Profile.ObservationPeriod)
	}
	if got.Profile.Platform.Sites != def.Platform.Sites {
		t.Fatal("nested defaults not preserved")
	}
}

func TestUnmarshalRejectsUnknownFields(t *testing.T) {
	if _, err := Unmarshal([]byte(`{"profile": {"SizeScle": 2.5}}`)); err == nil {
		t.Fatal("expected error for unknown field")
	}
}

func TestUnmarshalRejectsInvalidProfile(t *testing.T) {
	if _, err := Unmarshal([]byte(`{"profile": {"SizeScale": -1}}`)); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte(`{not json`)); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestMarshalRejectsInvalidProfile(t *testing.T) {
	f := Default()
	f.Profile.Replications = 0
	if _, err := Marshal(f); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profile.json")
	f := Default()
	f.Description = "test campaign"
	f.Profile.Seed = 99
	if err := Save(path, f); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Description != "test campaign" || got.Profile.Seed != 99 {
		t.Fatalf("Load round trip: %+v", got)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestMarshalIsHumanReadable(t *testing.T) {
	data, err := Marshal(Default())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, "\n  ") {
		t.Fatal("output not indented")
	}
	if !strings.HasSuffix(s, "\n") {
		t.Fatal("output not newline-terminated")
	}
	// The tracer must never leak into the schema.
	if strings.Contains(s, "Tracer") {
		t.Fatal("runtime-only Tracer field serialised")
	}
}

func TestCacheSpecValidate(t *testing.T) {
	if err := (CacheSpec{}).Validate(); err != nil {
		t.Errorf("zero CacheSpec invalid: %v", err)
	}
	if err := (CacheSpec{Dir: "/tmp/c", MaxEntries: 64}).Validate(); err != nil {
		t.Errorf("populated CacheSpec invalid: %v", err)
	}
	if err := (CacheSpec{MaxEntries: -1}).Validate(); err == nil {
		t.Error("negative max_entries validated, want error")
	}
}

func TestClusterSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec ClusterSpec
		ok   bool
	}{
		{"zero", ClusterSpec{}, true},
		{"worker", ClusterSpec{Worker: true}, true},
		{"coordinator", ClusterSpec{Peers: []string{"http://127.0.0.1:7077", "https://w2:7077"}}, true},
		{"both roles", ClusterSpec{Worker: true, Peers: []string{"http://w:7077"}}, false},
		{"bad scheme", ClusterSpec{Peers: []string{"ftp://w:7077"}}, false},
		{"no host", ClusterSpec{Peers: []string{"http://"}}, false},
		{"garbage", ClusterSpec{Peers: []string{"not a url"}}, false},
		{"duplicate", ClusterSpec{Peers: []string{"http://w:7077", "http://w:7077/"}}, false},
		{"negative heartbeat", ClusterSpec{HeartbeatSec: -1}, false},
		{"negative dead-after", ClusterSpec{DeadAfterSec: -0.5}, false},
		{"negative probe timeout", ClusterSpec{ProbeTimeoutSec: -1}, false},
		{"negative breaker threshold", ClusterSpec{BreakerThreshold: -1}, false},
		{"negative breaker cooldown", ClusterSpec{BreakerCooldownSec: -1}, false},
		{"probe timeout under default heartbeat", ClusterSpec{ProbeTimeoutSec: 2}, true},
		{"probe timeout at default heartbeat", ClusterSpec{ProbeTimeoutSec: 5}, false},
		{"probe timeout under explicit heartbeat", ClusterSpec{HeartbeatSec: 0.5, ProbeTimeoutSec: 0.2}, true},
		{"probe timeout over explicit heartbeat", ClusterSpec{HeartbeatSec: 0.5, ProbeTimeoutSec: 1}, false},
		{"dead-after under heartbeat", ClusterSpec{HeartbeatSec: 2, DeadAfterSec: 1}, false},
		{"dead-after over heartbeat", ClusterSpec{HeartbeatSec: 2, DeadAfterSec: 10}, true},
		{"negative hedge disables", ClusterSpec{HedgeAfterSec: -1}, true},
		{"breaker knobs", ClusterSpec{BreakerThreshold: 5, BreakerCooldownSec: 30}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
	if !(ClusterSpec{Peers: []string{"http://w:7077"}}).Coordinator() {
		t.Error("spec with peers not reported as coordinator")
	}
	if (ClusterSpec{Worker: true}).Coordinator() {
		t.Error("worker reported as coordinator")
	}
}
