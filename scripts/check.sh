#!/bin/sh
# check.sh — the repo's pre-merge gate: vet, build, full tests, then the
# race detector over the short-mode suite (the full figure sweeps under
# -race would take tens of minutes; the short suite still runs every
# parallel-runner and engine test). Pass FULL_RACE=1 to run the race
# detector over the complete suite instead.
set -eu
cd "$(dirname "$0")/.."

unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "check.sh: gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test ./...
if [ "${FULL_RACE:-0}" = "1" ]; then
	go test -race ./...
else
	go test -race -short ./...
fi
# Benchmark drift check: compares current timings against the committed
# BENCH_*.json baselines. A >20% slowdown prints a warning table (and a
# CI step-summary entry) but never fails the gate — single runs are too
# noisy to block on. Skip entirely with SKIP_BENCH_COMPARE=1.
if [ "${SKIP_BENCH_COMPARE:-0}" != "1" ]; then
	go run ./cmd/benchcmp
fi
echo "check.sh: all gates passed"
