package energy

import (
	"math"
	"testing"
	"testing/quick"

	"rlsched/internal/platform"
	"rlsched/internal/rng"
)

func makePlatform(t *testing.T) *platform.Platform {
	t.Helper()
	return platform.MustGenerate(platform.DefaultGenConfig(), rng.NewStream(5, "en"))
}

func TestEq5TwoState(t *testing.T) {
	// 90W peak for 10 units busy + 45W for 5 units idle.
	got := Eq5(90, 10, 45, 5, 0, 0)
	if got != 90*10+45*5 {
		t.Fatalf("Eq5 = %g", got)
	}
}

func TestEq5WithSleep(t *testing.T) {
	got := Eq5(90, 1, 45, 2, 5, 3)
	if got != 90+90+15 {
		t.Fatalf("Eq5 with sleep = %g", got)
	}
}

func TestEq6Average(t *testing.T) {
	if got := Eq6([]float64{10, 20, 30}); got != 20 {
		t.Fatalf("Eq6 = %g", got)
	}
	if Eq6(nil) != 0 {
		t.Fatal("Eq6(nil) should be 0")
	}
}

func TestECSSum(t *testing.T) {
	if got := ECS([]float64{1, 2, 3.5}); got != 6.5 {
		t.Fatalf("ECS = %g", got)
	}
}

func TestTakeMatchesPlatform(t *testing.T) {
	pl := makePlatform(t)
	s := Take(pl, 50)
	if math.Abs(s.Total-pl.TotalEnergy()) > 1e-9 {
		t.Fatalf("snapshot total %g != platform %g", s.Total, pl.TotalEnergy())
	}
	if len(s.NodeEnergy) != pl.NumNodes() {
		t.Fatalf("snapshot covers %d nodes, want %d", len(s.NodeEnergy), pl.NumNodes())
	}
	sum := 0.0
	for _, e := range s.NodeEnergy {
		sum += e
	}
	if math.Abs(sum-s.Total) > 1e-9 {
		t.Fatalf("node energies sum %g != total %g", sum, s.Total)
	}
}

func TestDeltaMonotonicity(t *testing.T) {
	pl := makePlatform(t)
	s1 := Take(pl, 10)
	s2 := Take(pl, 30)
	d := Delta(s1, s2)
	if d.Total <= 0 {
		t.Fatal("idle platform must consume energy between snapshots")
	}
	for id, e := range d.NodeEnergy {
		if e < 0 {
			t.Fatalf("node %d consumed negative energy %g", id, e)
		}
	}
}

func TestDeltaOutOfOrderPanics(t *testing.T) {
	pl := makePlatform(t)
	s1 := Take(pl, 10)
	s2 := Take(pl, 30)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-order Delta")
		}
	}()
	Delta(s2, s1)
}

func TestAccountantSeries(t *testing.T) {
	pl := makePlatform(t)
	a := NewAccountant(pl)
	for _, at := range []float64{10, 20, 30, 40} {
		a.Sample(at)
	}
	samples := a.Samples()
	if len(samples) != 5 { // initial + 4
		t.Fatalf("got %d samples, want 5", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Total < samples[i-1].Total {
			t.Fatalf("cumulative energy decreased at sample %d", i)
		}
	}
	if a.TotalEnergy() != samples[4].Total {
		t.Fatal("TotalEnergy disagrees with last sample")
	}
}

func TestEnergyBetweenInterpolation(t *testing.T) {
	pl := makePlatform(t)
	a := NewAccountant(pl)
	a.Sample(100)
	// Idle platform: energy is linear in time, so the interpolated half
	// interval is exactly half the total.
	half := a.EnergyBetween(0, 50)
	full := a.EnergyBetween(0, 100)
	if math.Abs(half*2-full) > 1e-6 {
		t.Fatalf("interpolated half %g vs full %g", half, full)
	}
	// Clamped beyond range.
	if got := a.EnergyBetween(100, 200); got != 0 {
		t.Fatalf("beyond-range delta %g, want 0", got)
	}
}

func TestEnergyBetweenEmpty(t *testing.T) {
	a := &Accountant{}
	if a.EnergyBetween(0, 10) != 0 {
		t.Fatal("empty accountant should report 0")
	}
	if a.TotalEnergy() != 0 {
		t.Fatal("empty accountant total should be 0")
	}
	if a.PerNode() != nil {
		t.Fatal("empty accountant PerNode should be nil")
	}
}

func TestPerNodeSorted(t *testing.T) {
	pl := makePlatform(t)
	a := NewAccountant(pl)
	a.Sample(25)
	per := a.PerNode()
	if len(per) != pl.NumNodes() {
		t.Fatalf("PerNode covers %d nodes, want %d", len(per), pl.NumNodes())
	}
	for i := 1; i < len(per); i++ {
		if per[i-1].NodeID >= per[i].NodeID {
			t.Fatal("PerNode not sorted by node ID")
		}
	}
}

func TestComputeEfficiencyIdlePlatform(t *testing.T) {
	pl := makePlatform(t)
	eff := ComputeEfficiency(pl, 100, 0)
	if eff.EnergyPerTask != 0 {
		t.Fatal("zero completions must give zero energy per task")
	}
	if eff.UtilizationRate != 0 {
		t.Fatalf("idle platform utilisation %g", eff.UtilizationRate)
	}
	if math.Abs(eff.IdleFraction-1) > 1e-9 {
		t.Fatalf("idle platform idle fraction %g, want 1", eff.IdleFraction)
	}
}

func TestComputeEfficiencyWithBusyTime(t *testing.T) {
	pl := makePlatform(t)
	// Run one processor busy for the whole window.
	p := pl.Processors()[0]
	p.SetState(platform.StateBusy, 0)
	eff := ComputeEfficiency(pl, 100, 10)
	if eff.EnergyPerTask <= 0 {
		t.Fatal("energy per task must be positive")
	}
	if eff.UtilizationRate <= 0 {
		t.Fatal("utilisation must be positive with a busy processor")
	}
	if eff.IdleFraction >= 1 {
		t.Fatalf("idle fraction %g must drop below 1", eff.IdleFraction)
	}
}

// Property: Eq5 is linear — doubling all dwell times doubles the energy.
func TestQuickEq5Linearity(t *testing.T) {
	f := func(b, i, s uint16) bool {
		bt, it, st := float64(b), float64(i), float64(s)
		one := Eq5(90, bt, 45, it, 5, st)
		two := Eq5(90, 2*bt, 45, 2*it, 5, 2*st)
		return math.Abs(two-2*one) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Eq6 lies between min and max of its inputs.
func TestQuickEq6Bounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		pp := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			pp[i] = float64(r)
			lo = math.Min(lo, pp[i])
			hi = math.Max(hi, pp[i])
		}
		e := Eq6(pp)
		return e >= lo-1e-9 && e <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: cumulative snapshots never decrease regardless of sampling
// pattern.
func TestQuickSnapshotMonotone(t *testing.T) {
	pl := platform.MustGenerate(platform.DefaultGenConfig(), rng.NewStream(77, "q"))
	a := NewAccountant(pl)
	now := 0.0
	f := func(step uint8) bool {
		now += float64(step) / 8
		before := a.TotalEnergy()
		s := a.Sample(now)
		return s.Total >= before-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTakeSnapshot(b *testing.B) {
	pl := platform.MustGenerate(platform.DefaultGenConfig(), rng.NewStream(1, "bench"))
	for i := 0; i < b.N; i++ {
		Take(pl, float64(i))
	}
}

func TestPowerSeries(t *testing.T) {
	pl := makePlatform(t)
	a := NewAccountant(pl)
	a.Sample(10)
	// Make one processor busy for the next interval, raising the draw.
	p := pl.Processors()[0]
	p.SetState(platform.StateBusy, 10)
	a.Sample(20)
	series := a.PowerSeries()
	if len(series) != 2 {
		t.Fatalf("series length %d, want 2", len(series))
	}
	if series[0].At != 10 || series[1].At != 20 {
		t.Fatalf("sample times %g/%g", series[0].At, series[1].At)
	}
	if series[1].Watts <= series[0].Watts {
		t.Fatalf("busy interval draw %g not above idle %g", series[1].Watts, series[0].Watts)
	}
	if got := a.PeakPower(); got != series[1].Watts {
		t.Fatalf("peak %g, want %g", got, series[1].Watts)
	}
}

func TestPowerSeriesEmpty(t *testing.T) {
	a := &Accountant{}
	if a.PowerSeries() != nil {
		t.Fatal("empty accountant should give nil series")
	}
	if a.PeakPower() != 0 {
		t.Fatal("empty accountant peak should be 0")
	}
}
