// Package onlinerl implements the Online-RL baseline, an extended version
// of Tesauro et al.'s reinforcement-learning power controller ([11] in the
// paper), induced into the same system model and scheduling strategy as
// Adaptive-RL (§V.B, Experiment 1).
//
// Per the paper's description of [11]: the system state is characterised
// by performance, power and load-intensity metrics; the reward signal is
// response time divided by total power consumed in a decision interval;
// the controller discovers the optimal level of CPU throttling in a given
// state; and it regulates clock speed to keep power close to, but not
// over, a power cap that follows a simple random-walk policy.
//
// Scheduling differences from Adaptive-RL: the grouping action is fixed
// (no adaptive opnum, mixed-priority merging), there is no shared memory
// — each agent decays its exploration on its own experience only, which
// is why its utilisation curve rises later (Figures 9/10) — and its
// learning targets the power/performance trade-off rather than the
// group/capacity match.
package onlinerl

import (
	"fmt"
	"math"

	"rlsched/internal/grouping"
	"rlsched/internal/platform"
	"rlsched/internal/sched"
	"rlsched/internal/workload"
)

// Config holds the baseline's parameters.
type Config struct {
	// Opnum is the fixed group size.
	Opnum int
	// Epsilon0 and ExplorationScale control per-agent ε-greedy placement;
	// the scale is in units of the agent's OWN completed groups, so decay
	// is much slower than Adaptive-RL's shared schedule.
	Epsilon0, ExplorationScale float64
	// EpsilonFloor bounds exploration from below.
	EpsilonFloor float64
	// ThrottleLevels are the discrete CPU-throttle actions.
	ThrottleLevels []float64
	// LearningRate is the Q-update step for the throttle controller.
	LearningRate float64
	// PowercapMin and PowercapMax bound the random-walk power cap, as
	// fractions of a node's aggregate peak power.
	PowercapMin, PowercapMax float64
	// PowercapStep is the random-walk step per decision interval.
	PowercapStep float64
}

// DefaultConfig returns the tuned defaults.
func DefaultConfig() Config {
	return Config{
		Opnum:            3,
		Epsilon0:         1.0,
		ExplorationScale: 150, // per agent — far slower than Adaptive-RL's shared decay
		EpsilonFloor:     0.05,
		ThrottleLevels:   []float64{0.95, 1.0},
		LearningRate:     0.2,
		PowercapMin:      0.9,
		PowercapMax:      1.0,
		PowercapStep:     0.02,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Opnum < 1:
		return fmt.Errorf("onlinerl: Opnum must be >= 1, got %d", c.Opnum)
	case c.Epsilon0 < 0 || c.Epsilon0 > 1:
		return fmt.Errorf("onlinerl: Epsilon0 %g out of [0,1]", c.Epsilon0)
	case c.ExplorationScale <= 0:
		return fmt.Errorf("onlinerl: ExplorationScale must be positive")
	case len(c.ThrottleLevels) == 0:
		return fmt.Errorf("onlinerl: no throttle levels")
	case c.LearningRate <= 0 || c.LearningRate > 1:
		return fmt.Errorf("onlinerl: LearningRate %g out of (0,1]", c.LearningRate)
	case c.PowercapMin <= 0 || c.PowercapMax > 1 || c.PowercapMin > c.PowercapMax:
		return fmt.Errorf("onlinerl: powercap range [%g,%g] invalid", c.PowercapMin, c.PowercapMax)
	case c.PowercapStep < 0:
		return fmt.Errorf("onlinerl: negative PowercapStep")
	}
	for i, l := range c.ThrottleLevels {
		if l <= 0 || l > 1 {
			return fmt.Errorf("onlinerl: throttle level %d = %g out of (0,1]", i, l)
		}
	}
	return nil
}

// loadBuckets discretises node queue occupancy into the state space.
const loadBuckets = 3

// nodeState is the per-node throttle controller.
type nodeState struct {
	// q[s][a] estimates the cost (RT × power) of throttle action a in
	// occupancy state s; the controller minimises it.
	q [loadBuckets][]float64
	// visits counts updates for diagnostics.
	visits int
	// action is the currently applied throttle index.
	action int
	// powercap is the node's random-walk cap as a fraction of peak.
	powercap float64
	// Interval baselines for the reward computation.
	lastEnergy  float64
	lastBusy    float64
	lastElapsed float64
}

// agentState tracks per-agent placement learning.
type agentState struct {
	cycles int
}

// Policy implements sched.Policy.
type Policy struct {
	cfg    Config
	nodes  map[int]*nodeState
	agents map[int]*agentState
	// interval response-time baseline (global).
	lastCompleted int
	lastRTSum     float64
}

// New creates the baseline with the given configuration.
func New(cfg Config) (*Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Policy{
		cfg:    cfg,
		nodes:  make(map[int]*nodeState),
		agents: make(map[int]*agentState),
	}, nil
}

// NewDefault creates the baseline with DefaultConfig.
func NewDefault() *Policy {
	p, err := New(DefaultConfig())
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements sched.Policy.
func (p *Policy) Name() string { return "online-rl" }

// Init implements sched.Policy.
func (p *Policy) Init(ctx *sched.Context) {
	for _, ag := range ctx.Agents() {
		p.agents[ag.ID] = &agentState{}
	}
	for _, n := range ctx.Platform().Nodes() {
		ns := &nodeState{
			action:   len(p.cfg.ThrottleLevels) - 1, // start at full speed
			powercap: p.cfg.PowercapMax,
		}
		for s := range ns.q {
			ns.q[s] = make([]float64, len(p.cfg.ThrottleLevels))
		}
		p.nodes[n.ID] = ns
	}
}

// epsilon is the per-agent exploration rate.
func (p *Policy) epsilon(st *agentState) float64 {
	eps := p.cfg.Epsilon0 * math.Exp(-float64(st.cycles)/p.cfg.ExplorationScale)
	return math.Max(p.cfg.EpsilonFloor, eps)
}

// ChooseAction implements sched.Policy: fixed-size, mixed-priority
// grouping — the [11] controller does not adapt the TG technique.
func (p *Policy) ChooseAction(*sched.Context, *sched.Agent, *workload.Task) sched.Action {
	return sched.Action{Opnum: p.cfg.Opnum, Mode: grouping.ModeMixed}
}

// PlaceGroup implements sched.Policy: ε-greedy best-fit with the slow
// per-agent exploration schedule.
func (p *Policy) PlaceGroup(ctx *sched.Context, ag *sched.Agent, g *grouping.Group, candidates []sched.NodeInfo) *platform.Node {
	st := p.agents[ag.ID]
	if ctx.Rand.Bool(p.epsilon(st)) {
		return candidates[ctx.Rand.Intn(len(candidates))].Node
	}
	return sched.BestFitNode(g, candidates)
}

// OnAssigned implements sched.Policy.
func (p *Policy) OnAssigned(*sched.Context, *sched.Agent, *grouping.Group, *platform.Node) {}

// OnGroupComplete implements sched.Policy.
func (p *Policy) OnGroupComplete(_ *sched.Context, ag *sched.Agent, _ *grouping.Group) {
	p.agents[ag.ID].cycles++
}

// OnProcessorIdle implements sched.Policy: [11] keeps CPUs available at
// all workload conditions (no sleep states).
func (p *Policy) OnProcessorIdle(*sched.Context, *platform.Processor) {}

// OnTick implements sched.Policy: the decision interval. For every node:
// evaluate the last interval's cost (mean response time × node power),
// update Q for the applied action, walk the power cap, and choose the next
// throttle level (ε-greedy over min cost, constrained by the cap).
func (p *Policy) OnTick(ctx *sched.Context) {
	now := ctx.Now()
	col := ctx.Metrics()
	completed := col.Completed()
	rtSum := col.AveRT() * float64(completed)
	intervalRT := 0.0
	if d := completed - p.lastCompleted; d > 0 {
		intervalRT = (rtSum - p.lastRTSum) / float64(d)
	}
	p.lastCompleted, p.lastRTSum = completed, rtSum

	pl := ctx.Platform()
	pl.AdvanceAll(now)
	for _, node := range pl.Nodes() {
		ns := p.nodes[node.ID]
		p.updateNode(ctx, node, ns, intervalRT, now)
	}
}

func (p *Policy) updateNode(ctx *sched.Context, node *platform.Node, ns *nodeState, intervalRT, now float64) {
	// Interval power: node energy delta over elapsed time.
	energyNow := node.Energy()
	elapsed := now - ns.lastElapsed
	power := 0.0
	if elapsed > 0 {
		power = (energyNow - ns.lastEnergy) / elapsed
	}
	ns.lastEnergy, ns.lastElapsed = energyNow, now

	// Cost signal: response time × power ("response time divided by total
	// power" is [11]'s reward to maximise with RT inverted; as a cost we
	// minimise the product). Normalise so Q stays O(1).
	cost := intervalRT / 100 * power / 95
	s := p.occupancyState(ctx, node)
	q := ns.q[s]
	q[ns.action] += p.cfg.LearningRate * (cost - q[ns.action])
	ns.visits++

	// Random-walk power cap.
	step := (ctx.Rand.Float64()*2 - 1) * p.cfg.PowercapStep
	ns.powercap = math.Min(p.cfg.PowercapMax, math.Max(p.cfg.PowercapMin, ns.powercap+step))

	// Next action: ε-greedy min-cost, filtered by the cap (busy power of
	// level l relative to peak must not exceed the cap).
	allowed := ns.allowedActions(p.cfg.ThrottleLevels, node)
	var next int
	if ctx.Rand.Bool(0.05) {
		next = allowed[ctx.Rand.Intn(len(allowed))]
	} else {
		next = allowed[0]
		for _, a := range allowed[1:] {
			if q[a] < q[next] {
				next = a
			}
		}
	}
	ns.action = next
	level := p.cfg.ThrottleLevels[next]
	for _, proc := range node.Processors {
		proc.SetThrottle(level, now)
	}
}

// occupancyState buckets the node's queue occupancy into the state space.
func (p *Policy) occupancyState(ctx *sched.Context, node *platform.Node) int {
	ni := ctx.NodeInfo(node)
	switch {
	case ni.QueuedGroups == 0:
		return 0
	case ni.FreeSlots > 0:
		return 1
	default:
		return 2
	}
}

// allowedActions returns throttle indices whose busy power respects the
// power cap; the lowest level is always allowed so the set is never empty.
func (ns *nodeState) allowedActions(levels []float64, node *platform.Node) []int {
	var out []int
	for i, l := range levels {
		// Busy power fraction of peak at throttle l, for the node's mean
		// power profile: (pmin + (pmax-pmin)·l)/pmax.
		frac := 0.0
		for _, proc := range node.Processors {
			frac += (proc.PMinW + (proc.PMaxW-proc.PMinW)*l) / proc.PMaxW
		}
		frac /= float64(len(node.Processors))
		if frac <= ns.powercap || i == 0 {
			out = append(out, i)
		}
	}
	return out
}

// NodeVisits exposes the per-node update counts for tests.
func (p *Policy) NodeVisits() map[int]int {
	out := make(map[int]int, len(p.nodes))
	for id, ns := range p.nodes {
		out[id] = ns.visits
	}
	return out
}
